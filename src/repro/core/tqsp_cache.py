"""Cross-query TQSP result cache.

A TQSP's looseness and keyword cover depend only on the candidate place,
the query keyword *set* and the edge-direction mode — never on the query
location or ``k`` (Definition 2 is purely graph-side).  That makes
``GetSemanticPlace`` results reusable across queries: two queries issued
from opposite ends of the map with the same keywords probe the same
places and redo identical BFS work.

The cache is an engine-owned bounded LRU keyed by
``(place, frozenset(keywords), undirected)`` storing three entry kinds:

* **COMPLETE** — exact looseness plus keyword vertices and parent
  chains.  Reusable at any threshold: if the caller's looseness
  threshold is at or below the exact looseness, Algorithm 3 would have
  pruned, so a PRUNED verdict is synthesized instead (the dynamic bound
  reaches exactly the final looseness on the last covering vertex).
* **UNQUALIFIED** — the BFS exhausted the reachable component without
  covering every keyword.  A terminal verdict, reusable at any
  threshold.
* **PRUNED lower bound** — an aborted Algorithm 3 run at threshold
  ``T`` proves ``looseness >= T``.  The bound is threshold-tagged: it
  re-prunes any *cheaper* (lower-or-equal) threshold but never
  substitutes for an exact answer — a later lookup with a higher
  threshold is a miss and re-runs the search, whose (possibly exact)
  result then upgrades the entry.

All operations take the internal lock, so one instance can be shared by
every worker thread of a batched executor.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.core.semantic_place import SearchStatus, TQSPSearch

CacheKey = Tuple[int, frozenset, bool]

_EXACT = 0  # COMPLETE or UNQUALIFIED: the verdict is final
_BOUND = 1  # PRUNED: only a looseness lower bound is known


class TQSPCache:
    """Bounded LRU over TQSP search outcomes."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        # (_EXACT, search, looseness) | (_BOUND, None, looseness bound)
        self._entries: "OrderedDict[CacheKey, Tuple[int, Optional[TQSPSearch], float]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.bound_reuses = 0

    @staticmethod
    def key(place: int, keywords, undirected: bool) -> CacheKey:
        return (place, frozenset(keywords), bool(undirected))

    # ------------------------------------------------------------------

    def lookup(
        self, key: CacheKey, looseness_threshold: float = math.inf, stats=None
    ) -> Optional[TQSPSearch]:
        """A reusable search outcome for ``key`` at this threshold, or
        None on a miss (the caller must run the BFS and :meth:`store`)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                kind, search, bound = entry
                if kind == _EXACT:
                    self.hits += 1
                    if stats is not None:
                        stats.cache_hits += 1
                        # Replay the logical outcome the BFS would have
                        # recorded, so per-query counters are identical
                        # with and without the cache (only the BFS work
                        # counters stay at zero).
                        if search.status is SearchStatus.UNQUALIFIED:
                            stats.unqualified_places += 1
                        elif search.looseness >= looseness_threshold:
                            stats.pruned_rule2 += 1
                    if (
                        search.status is SearchStatus.COMPLETE
                        and search.looseness >= looseness_threshold
                    ):
                        # Algorithm 3 at this threshold would have aborted.
                        return TQSPSearch(SearchStatus.PRUNED, math.inf)
                    return search
                if bound >= looseness_threshold:
                    # The recorded abort proves looseness >= bound >= T.
                    self.bound_reuses += 1
                    if stats is not None:
                        stats.cache_bound_reuses += 1
                        stats.pruned_rule2 += 1
                    return TQSPSearch(SearchStatus.PRUNED, math.inf)
            self.misses += 1
            if stats is not None:
                stats.cache_misses += 1
            return None

    def store(
        self, key: CacheKey, search: TQSPSearch, looseness_threshold: float
    ) -> None:
        """Record the outcome of a freshly-run search."""
        if search.status is SearchStatus.PRUNED:
            if not math.isfinite(looseness_threshold):
                return  # cannot happen in practice; nothing provable to keep
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None and existing[0] == _EXACT:
                    self._entries.move_to_end(key)
                    return  # never downgrade an exact verdict to a bound
                bound = looseness_threshold
                if existing is not None:
                    bound = max(bound, existing[2])
                self._put(key, (_BOUND, None, bound))
            return
        # COMPLETE and UNQUALIFIED are exact; strip the transient
        # vertices_visited counter so cached hits report zero BFS work.
        cached = TQSPSearch(
            search.status,
            search.looseness,
            search.keyword_vertices,
            search.parents,
        )
        with self._lock:
            self._put(key, (_EXACT, cached, 0.0))

    def _put(self, key: CacheKey, value: Tuple[int, Optional["TQSPSearch"], float]) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        """An atomic snapshot of size and hit/miss counters.

        Taken under the lock so a concurrent ``_put`` eviction or
        ``lookup`` increment can never yield a torn view (e.g. hits and
        misses from different instants of a batched run).
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "bound_reuses": self.bound_reuses,
            }
