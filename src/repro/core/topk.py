"""The top-k candidate queue shared by all kSP algorithms.

Holds at most ``k`` semantic places ordered by ranking score; ``threshold``
is the score of the current k-th candidate (``+inf`` while fewer than ``k``
candidates exist), the value every pruning rule compares against.  Ties are
broken by root vertex id so results are deterministic.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Tuple

from repro.core.query import SemanticPlace


class TopKQueue:
    """A bounded max-heap keeping the k best (lowest-score) places."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self._k = k
        # Python heapq is a min-heap; store negated keys to evict the worst.
        self._heap: List[Tuple[float, int, SemanticPlace]] = []

    @property
    def threshold(self) -> float:
        """The ranking score of the k-th candidate found so far (theta)."""
        if len(self._heap) < self._k:
            return math.inf
        return -self._heap[0][0]

    def consider(self, place: SemanticPlace) -> bool:
        """Offer a candidate; returns True when it entered the top-k."""
        key = (-place.score, -place.root)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, (key[0], key[1], place))
            return True
        worst = self._heap[0]
        if key > (worst[0], worst[1]):
            heapq.heapreplace(self._heap, (key[0], key[1], place))
            return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    def ranked(self) -> List[SemanticPlace]:
        """Candidates in final order: ascending score, then root id."""
        return [
            place
            for _, _, place in sorted(
                self._heap, key=lambda item: (-item[0], -item[1])
            )
        ]
