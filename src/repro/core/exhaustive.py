"""Exhaustive reference evaluation of kSP queries.

Scans *every* place vertex, constructs its TQSP with Algorithm 2 and ranks
all qualified places.  No pruning, no index assumptions — quadratic-ish and
slow, but obviously correct.  The test suite validates BSP/SPP/SP/TA
against it, and it is handy for spot-checking results on small datasets.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.deadline import Deadline
from repro.core.query import KSPQuery, KSPResult
from repro.core.ranking import DEFAULT_RANKING, RankingFunction
from repro.core.semantic_place import SearchStatus, SemanticPlaceSearcher
from repro.core.stats import QueryStats, QueryTimeout
from repro.core.topk import TopKQueue
from repro.rdf.graph import RDFGraph
from repro.text.inverted import build_query_map


def exhaustive_search(
    graph: RDFGraph,
    inverted_index,
    query: KSPQuery,
    ranking: RankingFunction = DEFAULT_RANKING,
    undirected: bool = False,
    timeout: Optional[float] = None,
) -> KSPResult:
    """Answer ``query`` by evaluating every place vertex."""
    stats = QueryStats(algorithm="EXHAUSTIVE")
    started = time.monotonic()
    deadline = Deadline.resolve(timeout)

    query_map = build_query_map(inverted_index, query.keywords)
    searcher = SemanticPlaceSearcher(graph, undirected=undirected)
    top_k = TopKQueue(query.k)

    try:
        for place, location in graph.places():
            if deadline is not None and deadline.expired():
                raise QueryTimeout()
            stats.places_retrieved += 1
            semantic_started = time.monotonic()
            try:
                search = searcher.tightest(
                    query.keywords, place, query_map, stats=stats, deadline=deadline
                )
            finally:
                stats.semantic_seconds += time.monotonic() - semantic_started
            stats.tqsp_computations += 1
            if search.status is not SearchStatus.COMPLETE:
                continue
            distance = location.distance_to(query.location)
            score = ranking.score(search.looseness, distance)
            if score < top_k.threshold:
                top_k.consider(
                    searcher.build_place(
                        query, place, location, distance, score, search
                    )
                )
    except QueryTimeout:
        stats.timed_out = True

    stats.runtime_seconds = time.monotonic() - started
    return KSPResult(query=query, places=top_k.ranked(), stats=stats)
