"""Planar geometry primitives used by the spatial index.

The paper measures spatial proximity with the Euclidean distance between a
query location and a place vertex (Section 2).  Places are points; R-tree
nodes are axis-aligned minimum bounding rectangles (MBRs).  Both expose the
``min_distance`` needed by best-first distance browsing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """A point in the plane.

    Coordinates are plain floats; the paper uses (latitude, longitude)
    degrees but nothing in the algorithms depends on the unit.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate rectangle: (%r, %r, %r, %r)"
                % (self.min_x, self.min_y, self.max_x, self.max_y)
            )

    @staticmethod
    def from_point(point: Point) -> "Rect":
        """The degenerate rectangle covering a single point."""
        return Rect(point.x, point.y, point.x, point.y)

    @staticmethod
    def union_all(rects: Iterable["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty collection."""
        iterator: Iterator[Rect] = iter(rects)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("union_all of an empty collection") from None
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for rect in iterator:
            if rect.min_x < min_x:
                min_x = rect.min_x
            if rect.min_y < min_y:
                min_y = rect.min_y
            if rect.max_x > max_x:
                max_x = rect.max_x
            if rect.max_y > max_y:
                max_y = rect.max_y
        return Rect(min_x, min_y, max_x, max_y)

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def margin(self) -> float:
        """Half-perimeter, used by some split heuristics."""
        return (self.max_x - self.min_x) + (self.max_y - self.min_y)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to also cover ``other``."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_point(self, point: Point) -> bool:
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def min_distance(self, point: Point) -> float:
        """MINDIST: the smallest distance from ``point`` to this rectangle.

        Zero when the point lies inside.  This is the lower bound that makes
        best-first R-tree traversal correct (Hjaltason & Samet).
        """
        dx = 0.0
        if point.x < self.min_x:
            dx = self.min_x - point.x
        elif point.x > self.max_x:
            dx = point.x - self.max_x
        dy = 0.0
        if point.y < self.min_y:
            dy = self.min_y - point.y
        elif point.y > self.max_y:
            dy = point.y - self.max_y
        return math.hypot(dx, dy)

    def max_distance(self, point: Point) -> float:
        """The largest distance from ``point`` to any point of the rectangle."""
        dx = max(abs(point.x - self.min_x), abs(point.x - self.max_x))
        dy = max(abs(point.y - self.min_y), abs(point.y - self.max_y))
        return math.hypot(dx, dy)
