"""A point R-tree with dynamic inserts, STR bulk loading and best-first NN.

The paper indexes all place vertices with an R-tree [Guttman 1984] and
retrieves them in ascending distance from the query location with the
best-first (distance browsing) algorithm of Hjaltason & Samet.  The SP
algorithm additionally traverses the same tree under a different priority
(the alpha-bound on the ranking score), so the tree exposes its nodes:
every node carries a stable ``node_id`` which the alpha-radius preprocessing
uses to attach word neighborhoods (Definition 6).

Only points are stored (places are point entities), but nodes are full MBRs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.spatial.geometry import Point, Rect

DEFAULT_MAX_ENTRIES = 32


@dataclass(frozen=True)
class LeafEntry:
    """A data entry: an opaque key (vertex id) at a point location."""

    key: Any
    point: Point

    @property
    def rect(self) -> Rect:
        return Rect.from_point(self.point)


class Node:
    """An R-tree node.

    ``entries`` holds :class:`LeafEntry` objects when ``is_leaf`` is true and
    child :class:`Node` objects otherwise.  ``rect`` is kept tight by the
    insertion and bulk-loading code.
    """

    __slots__ = ("node_id", "is_leaf", "entries", "rect", "parent")

    def __init__(self, node_id: int, is_leaf: bool) -> None:
        self.node_id = node_id
        self.is_leaf = is_leaf
        self.entries: List[Any] = []
        self.rect: Optional[Rect] = None
        self.parent: Optional["Node"] = None

    def recompute_rect(self) -> None:
        if not self.entries:
            self.rect = None
            return
        self.rect = Rect.union_all(entry.rect for entry in self.entries)

    def add(self, entry: Any) -> None:
        self.entries.append(entry)
        if isinstance(entry, Node):
            entry.parent = self
        if self.rect is None:
            self.rect = entry.rect
        else:
            self.rect = self.rect.union(entry.rect)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return "<%s #%d (%d entries)>" % (kind, self.node_id, len(self.entries))


class RTree:
    """Dynamic R-tree over points with pluggable node splitting.

    ``split`` selects the overflow strategy: ``"quadratic"`` (Guttman's
    quadratic split, the default) or ``"rstar"`` (the R*-tree topological
    split: choose the axis minimizing the margin sum over candidate
    distributions, then the distribution with the least overlap; forced
    reinsertion is not implemented).  STR bulk loading is independent of
    the choice.
    """

    def __init__(
        self, max_entries: int = DEFAULT_MAX_ENTRIES, split: str = "quadratic"
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if split not in ("quadratic", "rstar"):
            raise ValueError("split must be 'quadratic' or 'rstar'")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries * 2 // 5)
        self.split_strategy = split
        self._next_node_id = itertools.count()
        self.root = self._new_node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> Node:
        return Node(next(self._next_node_id), is_leaf)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        levels = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0]
            levels += 1
        return levels

    def insert(self, key: Any, point: Point) -> None:
        """Insert one point entry (Guttman insert with quadratic split)."""
        entry = LeafEntry(key, point)
        leaf = self._choose_leaf(self.root, entry.rect)
        leaf.add(entry)
        self._size += 1
        if len(leaf.entries) > self.max_entries:
            self._split_and_propagate(leaf)
        else:
            self._tighten_upwards(leaf)

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Tuple[Any, Point]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive (STR) loading.

        STR yields well-shaped leaves, which matters for the quality of the
        alpha-radius node bounds (nearby places share a node, so their word
        neighborhoods overlap and the node bound stays tight).
        """
        tree = cls(max_entries=max_entries)
        entries: List[Any] = [LeafEntry(key, point) for key, point in items]
        tree._size = len(entries)
        if not entries:
            return tree

        level_is_leaf = True
        while len(entries) > max_entries:
            entries = tree._str_pack_level(entries, level_is_leaf)
            level_is_leaf = False
        root = tree._new_node(is_leaf=level_is_leaf)
        for entry in entries:
            root.add(entry)
        tree.root = root
        return tree

    def _str_pack_level(self, entries: List[Any], is_leaf: bool) -> List[Node]:
        """Pack one level of entries into nodes of ``max_entries`` each."""
        capacity = self.max_entries
        node_count = -(-len(entries) // capacity)  # ceil division
        slice_count = max(1, int(round(node_count ** 0.5)))
        per_slice = -(-len(entries) // slice_count)

        def center_x(entry: Any) -> float:
            return entry.rect.center().x

        def center_y(entry: Any) -> float:
            return entry.rect.center().y

        entries = sorted(entries, key=center_x)
        nodes: List[Node] = []
        for start in range(0, len(entries), per_slice):
            strip = sorted(entries[start : start + per_slice], key=center_y)
            for node_start in range(0, len(strip), capacity):
                node = self._new_node(is_leaf=is_leaf)
                for entry in strip[node_start : node_start + capacity]:
                    node.add(entry)
                nodes.append(node)
        return nodes

    # ------------------------------------------------------------------
    # Insert internals
    # ------------------------------------------------------------------

    def _choose_leaf(self, node: Node, rect: Rect) -> Node:
        while not node.is_leaf:
            best_child = None
            best_enlargement = float("inf")
            best_area = float("inf")
            for child in node.entries:
                enlargement = child.rect.enlargement(rect)
                area = child.rect.area()
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best_child = child
                    best_enlargement = enlargement
                    best_area = area
            node = best_child
        return node

    def _tighten_upwards(self, node: Node) -> None:
        current: Optional[Node] = node
        while current is not None:
            current.recompute_rect()
            for entry in current.entries:
                if isinstance(entry, Node):
                    entry.parent = current
            current = current.parent

    def _split_and_propagate(self, node: Node) -> None:
        while len(node.entries) > self.max_entries:
            if self.split_strategy == "rstar":
                sibling = self._rstar_split(node)
            else:
                sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root = self._new_node(is_leaf=False)
                new_root.add(node)
                new_root.add(sibling)
                self.root = new_root
                self._tighten_upwards(node)
                return
            parent.add(sibling)
            self._tighten_upwards(node)
            node = parent
        self._tighten_upwards(node)

    def _quadratic_split(self, node: Node) -> Node:
        """Guttman's quadratic split: move roughly half of ``node``'s entries
        into a new sibling node, which is returned."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        remaining = [
            entry for i, entry in enumerate(entries) if i not in (seed_a, seed_b)
        ]

        while remaining:
            # Force the rest into a group if it must reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                rect_a = Rect.union_all([rect_a] + [e.rect for e in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                rect_b = Rect.union_all([rect_b] + [e.rect for e in remaining])
                remaining = []
                break
            index, prefer_a = self._pick_next(remaining, rect_a, rect_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                rect_a = rect_a.union(entry.rect)
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry.rect)

        node.entries = group_a
        node.recompute_rect()
        sibling = self._new_node(is_leaf=node.is_leaf)
        for entry in group_b:
            sibling.add(entry)
        if node.is_leaf is False:
            for child in node.entries:
                child.parent = node
        return sibling

    def _rstar_split(self, node: Node) -> Node:
        """R*-tree topological split (Beckmann et al., without reinsertion).

        For each axis, sort entries by their rectangle's lower then upper
        coordinate and consider every legal split position; pick the axis
        with the smallest total margin, then the position with the least
        overlap (area as tie-breaker)."""
        entries = node.entries
        minimum = self.min_entries
        best = None  # (overlap, area, axis_margin, sorted_entries, position)

        for axis in ("x", "y"):
            if axis == "x":
                keys = [(e.rect.min_x, e.rect.max_x) for e in entries]
            else:
                keys = [(e.rect.min_y, e.rect.max_y) for e in entries]
            order = sorted(range(len(entries)), key=lambda i: keys[i])
            ordered = [entries[i] for i in order]
            margin_sum = 0.0
            candidates = []
            for position in range(minimum, len(ordered) - minimum + 1):
                left = Rect.union_all(e.rect for e in ordered[:position])
                right = Rect.union_all(e.rect for e in ordered[position:])
                margin_sum += left.margin() + right.margin()
                overlap = 0.0
                if left.intersects(right):
                    overlap = Rect(
                        max(left.min_x, right.min_x),
                        max(left.min_y, right.min_y),
                        min(left.max_x, right.max_x),
                        min(left.max_y, right.max_y),
                    ).area()
                candidates.append(
                    (overlap, left.area() + right.area(), position)
                )
            for overlap, area, position in candidates:
                key = (margin_sum, overlap, area)
                if best is None or key < (best[0], best[1], best[2]):
                    best = (margin_sum, overlap, area, ordered, position)

        _, _, _, ordered, position = best
        node.entries = ordered[:position]
        node.recompute_rect()
        sibling = self._new_node(is_leaf=node.is_leaf)
        for entry in ordered[position:]:
            sibling.add(entry)
        if not node.is_leaf:
            for child in node.entries:
                child.parent = node
        return sibling

    @staticmethod
    def _pick_seeds(entries: Sequence[Any]) -> Tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = -float("inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].rect.union(entries[j].rect)
                waste = union.area() - entries[i].rect.area() - entries[j].rect.area()
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(
        remaining: Sequence[Any], rect_a: Rect, rect_b: Rect
    ) -> Tuple[int, bool]:
        best_index = 0
        best_difference = -1.0
        prefer_a = True
        for i, entry in enumerate(remaining):
            enlargement_a = rect_a.enlargement(entry.rect)
            enlargement_b = rect_b.enlargement(entry.rect)
            difference = abs(enlargement_a - enlargement_b)
            if difference > best_difference:
                best_difference = difference
                best_index = i
                prefer_a = enlargement_a < enlargement_b
        return best_index, prefer_a

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search(self, rect: Rect) -> List[LeafEntry]:
        """All entries whose point lies inside ``rect``."""
        results: List[LeafEntry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.rect is None or not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                results.extend(
                    entry for entry in node.entries if rect.contains_point(entry.point)
                )
            else:
                stack.extend(node.entries)
        return results

    def nearest(self, point: Point) -> "IncrementalNearest":
        """An incremental nearest-neighbour cursor from ``point``.

        Iterating it yields ``(distance, LeafEntry)`` pairs in ascending
        distance; ``node_accesses`` counts expanded R-tree nodes, which is one
        of the paper's reported cost metrics (Figures 3(c), 4(c), 7(b)).
        """
        return IncrementalNearest(self, point)

    def iter_entries(self) -> Iterator[LeafEntry]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.entries)

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes, parents before children (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.entries)

    def levels(self) -> List[List[Node]]:
        """Nodes grouped by level, root level first."""
        result: List[List[Node]] = []
        frontier = [self.root]
        while frontier:
            result.append(frontier)
            next_frontier: List[Node] = []
            for node in frontier:
                if not node.is_leaf:
                    next_frontier.extend(node.entries)
            frontier = next_frontier
        return result

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def size_bytes(self) -> int:
        """A flat-storage estimate of the index size (Table 4 accounting).

        Each leaf entry is a (key, x, y) record; each node is an MBR plus a
        child-pointer array.  Matches what a packed on-disk layout would use,
        which is more meaningful than Python object overhead.
        """
        entry_bytes = 8 + 8 + 8  # key + two float64 coordinates
        node_bytes = 4 * 8 + 8  # MBR + header
        pointer_bytes = 8
        total = 0
        for node in self.iter_nodes():
            total += node_bytes + pointer_bytes * len(node.entries)
            if node.is_leaf:
                total += entry_bytes * len(node.entries)
        return total

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation.

        Used by the property-based tests: every node MBR must cover its
        entries, leaves must be at uniform depth, and fill factors must hold
        for non-root nodes built by dynamic insertion.
        """
        depths = set()

        def visit(node: Node, depth: int) -> None:
            if node is not self.root and not node.entries:
                raise AssertionError("empty non-root node")
            if node.entries:
                expected = Rect.union_all(e.rect for e in node.entries)
                if node.rect != expected:
                    raise AssertionError(
                        "stale MBR at node %d: %r != %r"
                        % (node.node_id, node.rect, expected)
                    )
            if node.is_leaf:
                depths.add(depth)
                return
            for child in node.entries:
                if child.parent is not node and child.parent is not None:
                    raise AssertionError("broken parent pointer")
                visit(child, depth + 1)

        visit(self.root, 0)
        if len(depths) > 1:
            raise AssertionError("leaves at non-uniform depth: %r" % sorted(depths))
        if self._size != sum(1 for _ in self.iter_entries()):
            raise AssertionError("size counter out of sync")


class IncrementalNearest:
    """Best-first distance browsing over an :class:`RTree`.

    A binary heap keyed by MINDIST holds both nodes and leaf entries; popping
    a leaf entry yields the next nearest point.  The classic correctness
    argument: MINDIST of a node lower-bounds the distance of everything below
    it, so when an entry reaches the top of the heap no unexplored subtree can
    contain anything closer.
    """

    def __init__(self, tree: RTree, point: Point) -> None:
        self._point = point
        self._counter = itertools.count()  # tie-breaker for equal distances
        self._heap: List[Tuple[float, int, bool, Any]] = []
        self.node_accesses = 0
        root = tree.root
        if root.rect is not None:
            self._push_node(root)

    def _push_node(self, node: Node) -> None:
        heapq.heappush(
            self._heap,
            (node.rect.min_distance(self._point), next(self._counter), False, node),
        )

    def _push_entry(self, entry: LeafEntry) -> None:
        heapq.heappush(
            self._heap,
            (entry.point.distance_to(self._point), next(self._counter), True, entry),
        )

    def __iter__(self) -> Iterator[Tuple[float, LeafEntry]]:
        return self

    def __next__(self) -> Tuple[float, LeafEntry]:
        while self._heap:
            distance, _, is_entry, item = heapq.heappop(self._heap)
            if is_entry:
                return distance, item
            self.node_accesses += 1
            if item.is_leaf:
                for entry in item.entries:
                    self._push_entry(entry)
            else:
                for child in item.entries:
                    self._push_node(child)
        raise StopIteration

    def peek_distance(self) -> Optional[float]:
        """The MINDIST of the current heap top, or None when exhausted."""
        if not self._heap:
            return None
        return self._heap[0][0]
