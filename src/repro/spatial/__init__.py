"""Spatial substrate: planar geometry and a point R-tree.

The paper spatially indexes all place vertices with an R-tree and retrieves
them in ascending distance from the query location with best-first distance
browsing; the SP algorithm re-traverses the same tree under alpha-bound
priorities.
"""

from repro.spatial.geometry import Point, Rect
from repro.spatial.rtree import IncrementalNearest, LeafEntry, Node, RTree

__all__ = ["Point", "Rect", "RTree", "Node", "LeafEntry", "IncrementalNearest"]
