"""N-Triples parsing and serialization."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rdf import ntriples
from repro.rdf.terms import IRI, BlankNode, Literal, Triple


class TestParseLine:
    def test_simple_triple(self):
        triple = ntriples.parse_line("<http://s> <http://p> <http://o> .")
        assert triple == Triple(IRI("http://s"), IRI("http://p"), IRI("http://o"))

    def test_literal_object(self):
        triple = ntriples.parse_line('<http://s> <http://p> "hello world" .')
        assert triple.object == Literal("hello world")

    def test_language_literal(self):
        triple = ntriples.parse_line('<http://s> <http://p> "salut"@fr .')
        assert triple.object == Literal("salut", language="fr")

    def test_typed_literal(self):
        triple = ntriples.parse_line(
            '<http://s> <http://p> "1"^^<http://www.w3.org/2001/XMLSchema#int> .'
        )
        assert triple.object.datatype == IRI("http://www.w3.org/2001/XMLSchema#int")

    def test_blank_nodes(self):
        triple = ntriples.parse_line("_:a <http://p> _:b .")
        assert triple.subject == BlankNode("a")
        assert triple.object == BlankNode("b")

    def test_escapes(self):
        triple = ntriples.parse_line(r'<http://s> <http://p> "a\"b\nc\\d" .')
        assert triple.object.lexical == 'a"b\nc\\d'

    def test_unicode_escape(self):
        triple = ntriples.parse_line(r'<http://s> <http://p> "café" .')
        assert triple.object.lexical == "café"

    def test_long_unicode_escape(self):
        triple = ntriples.parse_line(r'<http://s> <http://p> "\U0001F600" .')
        assert triple.object.lexical == "\U0001F600"

    def test_extra_whitespace_tolerated(self):
        triple = ntriples.parse_line("  <http://s>   <http://p>  <http://o>  .  ")
        assert triple.subject == IRI("http://s")


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<http://s> <http://p> <http://o>",  # missing dot
            "<http://s> <http://p> .",  # missing object
            '"lit" <http://p> <http://o> .',  # literal subject
            "<http://s> _:b <http://o> .",  # blank predicate
            '<http://s> <http://p> "unterminated .',
            "<http://s <http://p> <http://o> .",  # unterminated IRI
            "<http://s> <http://p> <http://o> . trailing",
            r'<http://s> <http://p> "bad\q" .',  # unknown escape
        ],
    )
    def test_malformed_lines(self, line):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line(line)

    def test_error_carries_line_number(self):
        text = "<http://s> <http://p> <http://o> .\nbroken line\n"
        with pytest.raises(ntriples.NTriplesError) as excinfo:
            list(ntriples.parse(text))
        assert excinfo.value.line_number == 2


class TestStreamParsing:
    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n<http://s> <http://p> <http://o> .\n"
        triples = list(ntriples.parse(text))
        assert len(triples) == 1

    def test_parse_accepts_stream(self):
        stream = io.StringIO("<http://s> <http://p> <http://o> .\n")
        assert len(list(ntriples.parse(stream))) == 1

    def test_file_round_trip(self, tmp_path):
        triples = [
            Triple(IRI("http://s%d" % i), IRI("http://p"), Literal("v%d" % i))
            for i in range(10)
        ]
        path = tmp_path / "data.nt"
        written = ntriples.write_file(triples, path)
        assert written == 10
        assert list(ntriples.parse_file(path)) == triples


# Literals whose lexical form exercises the escaping machinery.
literal_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=50
)


class TestRoundTripProperties:
    @given(literal_texts)
    def test_literal_round_trip(self, text):
        triple = Triple(IRI("http://s"), IRI("http://p"), Literal(text))
        line = str(triple)
        # Only round-trippable when the text has no raw newline once escaped
        # (str(Literal) escapes them, so the line is always single-line).
        parsed = ntriples.parse_line(line)
        assert parsed.object.lexical == text

    @given(st.lists(literal_texts, max_size=10))
    def test_serialize_parse_round_trip(self, texts):
        triples = [
            Triple(IRI("http://s%d" % i), IRI("http://p"), Literal(text))
            for i, text in enumerate(texts)
        ]
        assert list(ntriples.parse(ntriples.serialize(triples))) == triples


class TestGzipFiles:
    def test_parse_file_reads_gzip(self, tmp_path):
        import gzip

        triples = [
            Triple(IRI("http://s%d" % i), IRI("http://p"), Literal("t%d" % i))
            for i in range(5)
        ]
        path = tmp_path / "data.nt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write(ntriples.serialize(triples))
        assert list(ntriples.parse_file(path)) == triples

    def test_plain_file_still_reads(self, tmp_path):
        triples = [Triple(IRI("http://s"), IRI("http://p"), Literal("x"))]
        path = tmp_path / "data.nt"
        ntriples.write_file(triples, path)
        assert list(ntriples.parse_file(path)) == triples
