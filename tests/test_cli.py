"""The command-line interface."""

import pytest

from repro.cli import main
from repro.datagen.paper_example import EXAMPLE_NTRIPLES


@pytest.fixture(scope="module")
def example_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "example.nt"
    path.write_text(EXAMPLE_NTRIPLES, encoding="utf-8")
    return str(path)


class TestQueryCommand:
    def test_basic_query(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman", "catholic", "history",
                "-k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Montmajour_Abbey" in out.splitlines()[0]
        assert "f=1.3" in out
        assert "[SP]" in out

    @pytest.mark.parametrize("method", ["bsp", "spp", "sp", "ta"])
    def test_all_methods(self, example_file, capsys, method):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.17,5.90",
                "--keywords", "ancient", "roman",
                "--method", method,
                "-k", "1",
            ]
        )
        assert code == 0
        assert "Roman_Catholic_Diocese" in capsys.readouterr().out

    def test_weighted_sum_ranking(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman", "catholic", "history",
                "--ranking", "sum", "--beta", "0.9",
                "-k", "1",
            ]
        )
        assert code == 0
        # Looseness-dominated ranking prefers the diocese (L=4).
        assert "Roman_Catholic_Diocese" in capsys.readouterr().out

    def test_no_result(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "0,0",
                "--keywords", "church", "architecture",
            ]
        )
        assert code == 0
        assert "no qualified semantic place" in capsys.readouterr().out

    def test_bad_location_rejected(self, example_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--data", example_file,
                    "--location", "nowhere",
                    "--keywords", "ancient",
                ]
            )


class TestStatsCommand:
    def test_reports(self, example_file, capsys):
        code = main(["stats", "--data", example_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "alpha_index" in out
        assert "build times" in out


class TestGenerateCommand:
    def test_generate_and_reload(self, tmp_path, capsys):
        output = tmp_path / "tiny.nt"
        code = main(
            [
                "generate",
                "--profile", "tiny-yago",
                "--vertices", "300",
                "--seed", "4",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert output.exists()
        # The generated corpus is loadable and queryable end-to-end.
        code = main(["stats", "--data", str(output), "--alpha", "1"])
        assert code == 0


class TestStatsFlag:
    def test_stats_tables_printed(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman",
                "-k", "1",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "statistics:" in out
        assert "cache_hits" in out
        assert "kernel_searches" in out
        assert "tqsp cache:" in out

    def test_no_stats_by_default(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman",
                "-k", "1",
            ]
        )
        assert code == 0
        assert "statistics:" not in capsys.readouterr().out


class TestObservabilityFlags:
    def test_trace_prints_phase_breakdown(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman",
                "-k", "1",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace: per-phase breakdown" in out
        assert "tqsp-bfs" in out

    def test_no_trace_by_default(self, example_file, capsys):
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman",
                "-k", "1",
            ]
        )
        assert code == 0
        assert "trace:" not in capsys.readouterr().out

    def test_metrics_out_writes_exposition(self, example_file, capsys, tmp_path):
        target = tmp_path / "metrics.prom"
        code = main(
            [
                "query",
                "--data", example_file,
                "--location", "43.51,4.75",
                "--keywords", "ancient", "roman",
                "-k", "1",
                "--metrics-out", str(target),
            ]
        )
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        text = target.read_text(encoding="utf-8")
        assert "# TYPE ksp_query_latency_seconds histogram" in text
        assert "ksp_query_latency_seconds_count 1" in text
        assert 'ksp_queries_total{method="sp"} 1' in text
