"""Reachability substrate: Tarjan SCC, condensation, GRAIL, PLL."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reach.condensation import Condensation
from repro.reach.grail import GrailIndex
from repro.reach.pll import PrunedLandmarkIndex
from repro.reach.tarjan import component_count, strongly_connected_components


def adjacency(edges, n):
    out = [[] for _ in range(n)]
    for a, b in edges:
        if b not in out[a]:
            out[a].append(b)
    return out


def successors_of(out):
    return lambda v: out[v]


def brute_force_reach(out, source, target):
    stack, seen = [source], {source}
    while stack:
        node = stack.pop()
        if node == target:
            return True
        for child in out[node]:
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return False


# Random directed graphs as edge lists.
def graphs(max_n=14):
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=3 * n,
            ),
        )
    )


class TestTarjan:
    def test_single_vertex(self):
        assert strongly_connected_components(1, lambda v: []) == [0]

    def test_two_cycles_and_bridge(self):
        # 0<->1 -> 2<->3
        out = adjacency([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4)
        component = strongly_connected_components(4, successors_of(out))
        assert component[0] == component[1]
        assert component[2] == component[3]
        assert component[0] != component[2]
        # Reverse topological ids: upstream SCC has the larger id.
        assert component[0] > component[2]

    def test_dag_gives_singletons(self):
        out = adjacency([(0, 1), (1, 2), (0, 2)], 3)
        component = strongly_connected_components(3, successors_of(out))
        assert component_count(component) == 3

    def test_full_cycle_single_component(self):
        n = 50
        out = adjacency([(i, (i + 1) % n) for i in range(n)], n)
        component = strongly_connected_components(n, successors_of(out))
        assert component_count(component) == 1

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        out = [[i + 1] if i + 1 < n else [] for i in range(n)]
        component = strongly_connected_components(n, successors_of(out))
        assert component_count(component) == n

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_mutual_reachability_characterization(self, data):
        n, edges = data
        out = adjacency(edges, n)
        component = strongly_connected_components(n, successors_of(out))
        rng = random.Random(0)
        for _ in range(12):
            a, b = rng.randrange(n), rng.randrange(n)
            mutually = brute_force_reach(out, a, b) and brute_force_reach(out, b, a)
            assert (component[a] == component[b]) == mutually


class TestCondensation:
    def test_is_acyclic(self):
        out = adjacency([(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)], 4)
        condensation = Condensation(4, successors_of(out))
        # The whole graph collapses: 1->2->3->1 and 0<->1.
        assert condensation.node_count == 1

    def test_edge_direction_preserved(self):
        out = adjacency([(0, 1)], 2)
        condensation = Condensation(2, successors_of(out))
        a, b = condensation.node_of(0), condensation.node_of(1)
        assert b in condensation.out[a]
        assert a in condensation.into[b]

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_reachability_preserved(self, data):
        n, edges = data
        out = adjacency(edges, n)
        condensation = Condensation(n, successors_of(out))
        rng = random.Random(1)
        for _ in range(10):
            a, b = rng.randrange(n), rng.randrange(n)
            expected = brute_force_reach(out, a, b)
            got = brute_force_reach(
                condensation.out, condensation.node_of(a), condensation.node_of(b)
            )
            assert got == expected

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_topological_id_order(self, data):
        n, edges = data
        out = adjacency(edges, n)
        condensation = Condensation(n, successors_of(out))
        for source in range(condensation.node_count):
            for target in condensation.out[source]:
                assert source > target  # edges point to smaller ids


def _dag_from(data):
    """A DAG via condensation of a random digraph."""
    n, edges = data
    out = adjacency(edges, n)
    return Condensation(n, successors_of(out))


class TestGrail:
    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_exact_on_random_dags(self, data):
        condensation = _dag_from(data)
        index = GrailIndex(condensation.out, label_count=2)
        for a in range(condensation.node_count):
            for b in range(condensation.node_count):
                assert index.reaches(a, b) == brute_force_reach(
                    condensation.out, a, b
                )

    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_filter_has_no_false_negatives(self, data):
        condensation = _dag_from(data)
        index = GrailIndex(condensation.out, label_count=3)
        for a in range(condensation.node_count):
            for b in range(condensation.node_count):
                if brute_force_reach(condensation.out, a, b):
                    assert index.maybe_reaches(a, b)

    def test_invalid_label_count(self):
        with pytest.raises(ValueError):
            GrailIndex([[]], label_count=0)

    def test_size_accounting(self):
        index = GrailIndex([[1], []], label_count=2)
        assert index.size_bytes() == 2 * 4 * 2 * 2


class TestPrunedLandmark:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_exact_on_random_dags(self, data):
        condensation = _dag_from(data)
        index = PrunedLandmarkIndex(condensation.out, condensation.into)
        for a in range(condensation.node_count):
            for b in range(condensation.node_count):
                assert index.reaches(a, b) == brute_force_reach(
                    condensation.out, a, b
                )

    def test_chain(self):
        out = [[1], [2], [3], []]
        into = [[], [0], [1], [2]]
        index = PrunedLandmarkIndex(out, into)
        assert index.reaches(0, 3)
        assert not index.reaches(3, 0)
        assert index.reaches(2, 2)

    def test_mismatched_adjacency_rejected(self):
        with pytest.raises(ValueError):
            PrunedLandmarkIndex([[]], [[], []])

    def test_pruning_keeps_labels_small_on_star(self):
        # Hub-and-spoke: the hub is processed first and covers everything,
        # so every other node carries O(1) labels.
        n = 200
        out = [[] for _ in range(n)]
        into = [[] for _ in range(n)]
        for i in range(1, n):
            out[0].append(i)
            into[i].append(0)
        index = PrunedLandmarkIndex(out, into)
        assert index.label_entry_count() <= 3 * n
