"""reprolint: every rule fires on a seeded violation and stays quiet on
the fixed twin, suppressions need a reason, and the repository itself
lints clean."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.baseline import Baseline, BaselineError, fingerprint
from repro.analysis.config import (
    ConfigError,
    LintConfig,
    config_from_mapping,
    load_config,
)
from repro.analysis.report import render_json, render_sarif, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


ALL_RULE_IDS = (
    "RL000",
    "RL001",
    "RL002",
    "RL003",
    "RL004",
    "RL005",
    "RL006",
    "RL007",
    "RL008",
    "RL009",
    "RL010",
)


def run_lint(tmp_path, files, rule_paths=None, rule_ids=None, baseline=None):
    """Write ``files`` (name -> source) under ``tmp_path`` and lint them.

    Unless a test narrows them, every rule governs every fixture file —
    the repo defaults scope rules to ``src/repro/**`` and would skip
    fixtures living in pytest tmp directories.
    """
    paths = []
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(target)
    if rule_paths is None:
        rule_paths = {rule_id: ["**/*.py"] for rule_id in ALL_RULE_IDS}
    config = config_from_mapping(tmp_path, rule_paths)
    return lint_paths(
        paths, config=config, rule_ids=rule_ids, baseline=baseline
    )


def rules_fired(result):
    return sorted({finding.rule for finding in result.findings})


# ---------------------------------------------------------------------------
# RL001 lock discipline


RL001_BAD = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0

        def record(self):
            with self._lock:
                self.hits += 1

        def snapshot(self):
            return self.hits
"""

RL001_GOOD = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0

        def record(self):
            with self._lock:
                self.hits += 1

        def snapshot(self):
            with self._lock:
                return self.hits
"""

# The TQSPCache shape: a private helper writing guarded state is fine
# as long as every call site of the helper holds the lock.
RL001_HELPER = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self.entries = {}

        def store(self, key, value):
            with self._lock:
                self._put(key, value)

        def _put(self, key, value):
            self.entries[key] = value
"""

RL001_HELPER_LEAK = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self.entries = {}

        def store(self, key, value):
            with self._lock:
                self._put(key, value)

        def store_fast(self, key, value):
            self._put(key, value)

        def _put(self, key, value):
            self.entries[key] = value
"""


class TestLockDiscipline:
    def test_unguarded_read_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL001_BAD})
        assert rules_fired(result) == ["RL001"]
        assert "snapshot" in result.findings[0].message

    def test_guarded_twin_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL001_GOOD})
        assert result.findings == []

    def test_lock_held_helper_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"helper.py": RL001_HELPER})
        assert result.findings == []

    def test_helper_with_unlocked_call_site_fires(self, tmp_path):
        result = run_lint(tmp_path, {"leak.py": RL001_HELPER_LEAK})
        assert "RL001" in rules_fired(result)

    def test_init_writes_are_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL001_GOOD})
        assert result.findings == []  # __init__ seeds hits without the lock


# ---------------------------------------------------------------------------
# RL002 deadline polling


RL002_BAD = """
    def drain(queue, deadline):
        while queue:
            queue.pop()
"""

RL002_GOOD = """
    def drain(queue, deadline):
        while queue:
            deadline.check()
            queue.pop()
"""

RL002_GOOD_EXPIRED = """
    def drain(queue, deadline):
        while queue:
            if deadline.expired():
                break
            queue.pop()
"""


class TestDeadlinePoll:
    def test_unpolled_while_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL002_BAD})
        assert rules_fired(result) == ["RL002"]

    def test_check_satisfies(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL002_GOOD})
        assert result.findings == []

    def test_expired_satisfies(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL002_GOOD_EXPIRED})
        assert result.findings == []

    def test_scoping_excludes_ungoverned_files(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"elsewhere.py": RL002_BAD},
            rule_paths={"RL002": ["kernels/*.py"]},
        )
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL003 frozen config mutation


RL003_BAD = """
    def tune(base):
        cfg = EngineConfig(alpha=3)
        cfg.alpha = 5
        return cfg
"""

RL003_GOOD = """
    import dataclasses

    def tune(base):
        cfg = EngineConfig(alpha=3)
        return dataclasses.replace(cfg, alpha=5)
"""

RL003_SETATTR = """
    def tune():
        options = QueryOptions()
        object.__setattr__(options, "k", 9)
        return options
"""

RL003_ANNOTATED_PARAM = """
    def tune(cfg: EngineConfig):
        cfg.alpha = 7
"""


class TestFrozenConfig:
    def test_attribute_store_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL003_BAD})
        assert rules_fired(result) == ["RL003"]

    def test_replace_twin_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL003_GOOD})
        assert result.findings == []

    def test_object_setattr_backdoor_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL003_SETATTR})
        assert rules_fired(result) == ["RL003"]

    def test_annotated_parameter_is_tracked(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL003_ANNOTATED_PARAM})
        assert rules_fired(result) == ["RL003"]


# ---------------------------------------------------------------------------
# RL004 wall clock / randomness


RL004_BAD_TIME = """
    import time

    def stamp():
        return time.time()
"""

RL004_BAD_IMPORT = """
    from time import time

    def stamp():
        return time()
"""

RL004_BAD_RANDOM = """
    import random

    def jitter():
        return random.random()
"""

RL004_GOOD = """
    import time

    def stamp():
        return time.monotonic()
"""

# The cross-process-status pattern: judging another process's heartbeat
# freshness by wall clock.  An NTP step makes a healthy fleet look stale
# (or a wedged worker look fresh); CLOCK_MONOTONIC is shared by every
# process on the host, so the monotonic twin is the only sound form.
RL004_BAD_CROSS_PROCESS_STATUS = """
    import time

    STALE_AFTER = 3.0

    def is_stale(record):
        age = time.time() - record["written_at"]
        return age >= STALE_AFTER
"""

RL004_GOOD_CROSS_PROCESS_STATUS = """
    import time

    STALE_AFTER = 3.0

    def is_stale(record):
        age = time.monotonic() - record["monotonic_at"]
        return age >= STALE_AFTER
"""


class TestWallClock:
    @pytest.mark.parametrize(
        "source",
        [
            RL004_BAD_TIME,
            RL004_BAD_IMPORT,
            RL004_BAD_RANDOM,
            RL004_BAD_CROSS_PROCESS_STATUS,
        ],
    )
    def test_wall_clock_and_random_fire(self, tmp_path, source):
        result = run_lint(tmp_path, {"bad.py": source})
        assert rules_fired(result) == ["RL004"]

    def test_monotonic_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL004_GOOD})
        assert result.findings == []

    def test_cross_process_monotonic_staleness_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path, {"good.py": RL004_GOOD_CROSS_PROCESS_STATUS}
        )
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL005 swallowed exceptions


RL005_BAD = """
    def call(task):
        try:
            return task()
        except Exception:
            return None
"""

RL005_GOOD_LOG = """
    import logging

    log = logging.getLogger(__name__)

    def call(task):
        try:
            return task()
        except Exception:
            log.exception("task failed")
            return None
"""

RL005_GOOD_RECORD = """
    def call(task, stats):
        try:
            return task()
        except Exception as exc:
            stats.error = str(exc)
            return None
"""

RL005_GOOD_RERAISE = """
    def call(task, counter):
        try:
            return task()
        except Exception:
            counter.inc()
            raise
"""

RL005_NARROW = """
    def call(task):
        try:
            return task()
        except KeyError:
            return None
"""


class TestSwallowedExceptions:
    def test_silent_broad_handler_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL005_BAD})
        assert rules_fired(result) == ["RL005"]

    @pytest.mark.parametrize(
        "source", [RL005_GOOD_LOG, RL005_GOOD_RECORD, RL005_GOOD_RERAISE]
    )
    def test_accounted_handlers_are_clean(self, tmp_path, source):
        result = run_lint(tmp_path, {"good.py": source})
        assert result.findings == []

    def test_narrow_handler_out_of_scope(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL005_NARROW})
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL006 wire-schema drift (cross-file)


RL006_RESULT = """
    class KSPResult:
        def to_dict(self):
            return {"places": self.places, "stats": self.stats, "extra": 1}

        @classmethod
        def from_dict(cls, data):
            return cls(places=data["places"], stats=data.get("stats"))
"""

RL006_SCHEMA = """
    RESULT_FIELDS = ("places", "stats")
    RESULT_DERIVED_FIELDS = ()
"""

RL006_RESULT_OK = """
    class KSPResult:
        def to_dict(self):
            return {"places": self.places, "stats": self.stats}

        @classmethod
        def from_dict(cls, data):
            return cls(places=data["places"], stats=data.get("stats"))
"""


class TestWireSchema:
    def test_undeclared_field_fires(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"result.py": RL006_RESULT, "schemas.py": RL006_SCHEMA},
            rule_paths={"RL006": ["*.py"]},
        )
        assert rules_fired(result) == ["RL006"]
        assert any("extra" in f.message for f in result.findings)

    def test_matching_sides_are_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"result.py": RL006_RESULT_OK, "schemas.py": RL006_SCHEMA},
            rule_paths={"RL006": ["*.py"]},
        )
        assert result.findings == []

    def test_single_side_stays_silent(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"result.py": RL006_RESULT},
            rule_paths={"RL006": ["*.py"]},
        )
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL007 metric help text


RL007_NO_HELP = """
    def init_metrics(registry):
        return registry.counter("ksp_query_timeouts_total")
"""

RL007_EMPTY_HELP = """
    class Engine:
        def _init_metrics(self):
            self._latency = self.metrics.histogram(
                "ksp_query_seconds", ""
            )
"""

RL007_EMPTY_KWARG = """
    def init_metrics(registry):
        return registry.gauge("ksp_cache_entries", help_text="")
"""

RL007_GOOD = """
    class Engine:
        def _init_metrics(self):
            self._timeouts = self.metrics.counter(
                "ksp_query_timeouts_total",
                "queries that hit their deadline",
            )
            self._entries = self.metrics.gauge(
                "ksp_cache_entries", help_text="live TQSP cache entries"
            )
"""

RL007_COMPUTED_HELP = """
    def init_metrics(registry, description):
        return registry.counter("ksp_query_errors_total", description)
"""

RL007_OTHER_RECEIVER = """
    def tally(stats):
        return stats.counter("retries")
"""


class TestMetricHelp:
    def test_missing_help_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL007_NO_HELP})
        assert rules_fired(result) == ["RL007"]
        assert "help text" in result.findings[0].message

    def test_empty_positional_help_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL007_EMPTY_HELP})
        assert rules_fired(result) == ["RL007"]

    def test_empty_keyword_help_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL007_EMPTY_KWARG})
        assert rules_fired(result) == ["RL007"]

    def test_described_twin_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL007_GOOD})
        assert result.findings == []

    def test_computed_help_is_accepted(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL007_COMPUTED_HELP})
        assert result.findings == []

    def test_non_metric_receiver_stays_silent(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL007_OTHER_RECEIVER})
        assert result.findings == []


# ---------------------------------------------------------------------------
# Suppressions


SUPPRESSED = """
    def drain(queue, deadline):
        # repro-lint: allow[RL002] bounded: queue length fixed before entry
        while queue:
            queue.pop()
"""

SUPPRESSED_SAME_LINE = """
    def drain(queue, deadline):
        while queue:  # repro-lint: allow[RL002] bounded: fixed length
            queue.pop()
"""

SUPPRESSED_NO_REASON = """
    def drain(queue, deadline):
        # repro-lint: allow[RL002]
        while queue:
            queue.pop()
"""

SUPPRESSED_OTHER_RULE = """
    def drain(queue, deadline):
        # repro-lint: allow[RL005] wrong rule id
        while queue:
            queue.pop()
"""


class TestSuppressions:
    def test_comment_above_suppresses(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED})
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].finding.rule == "RL002"
        assert "bounded" in result.suppressed[0].reason

    def test_same_line_suppresses(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED_SAME_LINE})
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_reason_is_mandatory(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED_NO_REASON})
        assert rules_fired(result) == ["RL002"]

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED_OTHER_RULE})
        # the loop still fires, and the mismatched allowance is itself
        # flagged as stale (RL000) because it suppressed nothing
        assert rules_fired(result) == ["RL000", "RL002"]


# ---------------------------------------------------------------------------
# RL002 interprocedural: a loop may delegate polling to a callee


RL002_HELPER_POLLS = """
    def _tick(deadline):
        deadline.check()

    def drain(queue, deadline):
        while queue:
            _tick(deadline)
            queue.pop()
"""

RL002_HELPER_POLLS_TRANSITIVELY = """
    def _really_tick(deadline):
        if deadline.expired():
            raise TimeoutError
    def _tick(deadline):
        _really_tick(deadline)

    def drain(queue, deadline):
        while queue:
            _tick(deadline)
            queue.pop()
"""

RL002_HELPER_DOES_NOT_POLL = """
    def _tick(deadline):
        pass

    def drain(queue, deadline):
        while queue:
            _tick(deadline)
            queue.pop()
"""

RL002_METHOD_POLLS = """
    class Search:
        def _poll(self):
            self.deadline.check()

        def run(self, queue):
            while queue:
                self._poll()
                queue.pop()
"""


class TestDeadlinePollInterprocedural:
    def test_polling_helper_satisfies(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL002_HELPER_POLLS})
        assert result.findings == []

    def test_transitive_polling_helper_satisfies(self, tmp_path):
        result = run_lint(
            tmp_path, {"good.py": RL002_HELPER_POLLS_TRANSITIVELY}
        )
        assert result.findings == []

    def test_non_polling_helper_still_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL002_HELPER_DOES_NOT_POLL})
        assert rules_fired(result) == ["RL002"]

    def test_polling_method_satisfies(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL002_METHOD_POLLS})
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL008 lock-order cycles


RL008_OPPOSITE_ORDER = """
    import threading

    class Transfer:
        def __init__(self):
            self.alpha = threading.Lock()
            self.beta = threading.Lock()

        def forward(self):
            with self.alpha:
                with self.beta:
                    pass

        def backward(self):
            with self.beta:
                with self.alpha:
                    pass
"""

RL008_CONSISTENT_ORDER = """
    import threading

    class Transfer:
        def __init__(self):
            self.alpha = threading.Lock()
            self.beta = threading.Lock()

        def forward(self):
            with self.alpha:
                with self.beta:
                    pass

        def backward(self):
            with self.alpha:
                with self.beta:
                    pass
"""

RL008_INTERPROCEDURAL_CYCLE = """
    import threading

    class Transfer:
        def __init__(self):
            self.alpha = threading.Lock()
            self.beta = threading.Lock()

        def forward(self):
            with self.alpha:
                self._take_beta()

        def _take_beta(self):
            with self.beta:
                pass

        def backward(self):
            with self.beta:
                self._take_alpha()

        def _take_alpha(self):
            with self.alpha:
                pass
"""

RL008_SELF_DEADLOCK = """
    import threading

    class Once:
        def __init__(self):
            self._lock = threading.Lock()

        def outer(self):
            with self._lock:
                self.inner()

        def inner(self):
            with self._lock:
                pass
"""

RL008_SELF_RLOCK = """
    import threading

    class Once:
        def __init__(self):
            self._lock = threading.RLock()

        def outer(self):
            with self._lock:
                self.inner()

        def inner(self):
            with self._lock:
                pass
"""


class TestLockOrder:
    def test_opposite_order_reports_cycle_with_witnesses(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL008_OPPOSITE_ORDER})
        assert rules_fired(result) == ["RL008"]
        message = result.findings[0].message
        assert "potential deadlock: lock-order cycle" in message
        # one witness call chain per edge of the 2-cycle
        assert message.count("witness") >= 2
        assert "alpha" in message and "beta" in message

    def test_consistent_order_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL008_CONSISTENT_ORDER})
        assert result.findings == []

    def test_cycle_through_helpers_is_found(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL008_INTERPROCEDURAL_CYCLE})
        assert rules_fired(result) == ["RL008"]
        message = result.findings[0].message
        assert "witness" in message
        # the witness renders the call chain that closes the cycle
        assert "_take_beta" in message or "_take_alpha" in message

    def test_self_deadlock_on_plain_lock(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL008_SELF_DEADLOCK})
        assert rules_fired(result) == ["RL008"]
        assert "self-deadlock" in result.findings[0].message

    def test_rlock_reentry_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL008_SELF_RLOCK})
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL009 fork safety


RL009_MODULE_LOCK = """
    import os
    import threading

    _lock = threading.Lock()

    def spawn():
        pid = os.fork()
        return pid
"""

RL009_MODULE_LOCK_REINIT = """
    import os
    import threading

    _lock = threading.Lock()

    def _reinit():
        global _lock
        _lock = threading.Lock()

    os.register_at_fork(after_in_child=_reinit)

    def spawn():
        pid = os.fork()
        return pid
"""

RL009_IMPORT_CHAIN = {
    "locks.py": """
        import threading

        _registry_lock = threading.Lock()
    """,
    "forker.py": """
        import os

        import locks

        def spawn():
            pid = os.fork()
            return pid
    """,
}

RL009_CHILD_USES_PREFORK_LOCK = """
    import os
    import threading

    class Server:
        def __init__(self):
            self._lock = threading.Lock()

        def spawn(self):
            pid = os.fork()
            if pid == 0:
                self.work()

        def work(self):
            with self._lock:
                pass
"""

RL009_CHILD_RECREATES = """
    import os
    import threading

    class Server:
        def __init__(self):
            self._lock = threading.Lock()

        def spawn(self):
            pid = os.fork()
            if pid == 0:
                self.work()

        def work(self):
            self._lock = threading.Lock()
            with self._lock:
                pass
"""

RL009_PID_GUARD = """
    import os
    import threading

    class Server:
        def __init__(self):
            self._lock = threading.Lock()
            self._owner_pid = os.getpid()

        def spawn(self):
            pid = os.fork()
            if pid == 0:
                self.work()

        def work(self):
            if os.getpid() != self._owner_pid:
                return
            with self._lock:
                pass
"""


class TestForkSafety:
    def test_module_lock_before_fork_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL009_MODULE_LOCK})
        assert rules_fired(result) == ["RL009"]
        assert "register_at_fork" in result.findings[0].message

    def test_register_at_fork_satisfies(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL009_MODULE_LOCK_REINIT})
        assert result.findings == []

    def test_lock_reached_through_import_chain_fires(self, tmp_path):
        result = run_lint(tmp_path, RL009_IMPORT_CHAIN)
        assert rules_fired(result) == ["RL009"]
        finding = result.findings[0]
        assert finding.path.endswith("locks.py")
        assert "import chain" in finding.message

    def test_child_path_using_prefork_lock_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL009_CHILD_USES_PREFORK_LOCK})
        assert rules_fired(result) == ["RL009"]
        assert "fork-child path" in result.findings[0].message

    def test_child_recreating_the_resource_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL009_CHILD_RECREATES})
        assert result.findings == []

    def test_getpid_guard_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL009_PID_GUARD})
        assert result.findings == []


# ---------------------------------------------------------------------------
# RL010 blocking under a lock


RL010_SLEEP_UNDER_LOCK = """
    import threading
    import time

    class Slow:
        def __init__(self):
            self._lock = threading.Lock()

        def tick(self):
            with self._lock:
                time.sleep(1.0)
"""

RL010_SLEEP_OUTSIDE_LOCK = """
    import threading
    import time

    class Slow:
        def __init__(self):
            self._lock = threading.Lock()

        def tick(self):
            with self._lock:
                pass
            time.sleep(1.0)
"""

RL010_TRANSITIVE = """
    import subprocess
    import threading

    class Runner:
        def __init__(self):
            self._lock = threading.Lock()

        def run(self):
            with self._lock:
                self._exec()

        def _exec(self):
            subprocess.run(["true"])
"""

RL010_CONDITION_WAIT = """
    import threading

    class Queue:
        def __init__(self):
            self._cond = threading.Condition()

        def take(self):
            with self._cond:
                self._cond.wait()
"""

RL010_SOCKET_SEND = """
    import threading

    class Pipe:
        def __init__(self):
            self._lock = threading.Lock()
            self._sock = None

        def push(self, data):
            with self._lock:
                self._sock.sendall(data)
"""


class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL010_SLEEP_UNDER_LOCK})
        assert rules_fired(result) == ["RL010"]
        assert "time.sleep" in result.findings[0].message

    def test_sleep_after_release_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL010_SLEEP_OUTSIDE_LOCK})
        assert result.findings == []

    def test_blocking_reached_through_callee_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL010_TRANSITIVE})
        assert rules_fired(result) == ["RL010"]
        message = result.findings[0].message
        assert "via" in message and "_exec" in message

    def test_condition_wait_is_exempt(self, tmp_path):
        result = run_lint(tmp_path, {"good.py": RL010_CONDITION_WAIT})
        assert result.findings == []

    def test_socket_send_under_lock_fires(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL010_SOCKET_SEND})
        assert rules_fired(result) == ["RL010"]


# ---------------------------------------------------------------------------
# RL000 stale suppressions


STALE_SUPPRESSION = """
    # repro-lint: allow[RL001] nothing here ever needed this
    def quiet():
        return 1
"""


class TestStaleSuppressions:
    def test_unused_allowance_fires_on_full_run(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": STALE_SUPPRESSION})
        assert rules_fired(result) == ["RL000"]
        assert "stale suppression" in result.findings[0].message

    def test_subset_runs_do_not_flag_stale(self, tmp_path):
        # With only RL002 selected, the RL001 allowance legitimately
        # matches nothing — flagging it would make --rules unusable.
        result = run_lint(
            tmp_path, {"s.py": STALE_SUPPRESSION}, rule_ids=["RL002"]
        )
        assert result.findings == []

    def test_used_allowance_is_not_stale(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED})
        assert result.findings == []
        assert len(result.suppressed) == 1


# ---------------------------------------------------------------------------
# Baseline


class TestBaseline:
    def test_baselined_findings_do_not_fail_the_run(self, tmp_path):
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        assert dirty.exit_code() == 1
        baseline = Baseline.from_findings(dirty.findings)
        again = run_lint(tmp_path, {"bad.py": RL002_BAD}, baseline=baseline)
        assert again.findings == []
        assert len(again.baselined) == 1
        assert again.exit_code() == 0

    def test_new_finding_still_fails(self, tmp_path):
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        baseline = Baseline.from_findings(dirty.findings)
        both = run_lint(
            tmp_path,
            {"bad.py": RL002_BAD, "worse.py": RL010_SLEEP_UNDER_LOCK},
            baseline=baseline,
        )
        assert rules_fired(both) == ["RL010"]
        assert both.exit_code() == 1

    def test_fixed_debt_is_reported_as_unmatched(self, tmp_path):
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        baseline = Baseline.from_findings(dirty.findings)
        clean = run_lint(tmp_path, {"bad.py": RL002_GOOD}, baseline=baseline)
        assert clean.findings == []
        assert clean.baseline_unmatched  # entry absorbed nothing
        assert clean.exit_code() == 0

    def test_round_trip_through_disk(self, tmp_path):
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        baseline = Baseline.from_findings(dirty.findings)
        path = tmp_path / "baseline.json"
        baseline.write(path)
        loaded = Baseline.load(path)
        new, baselined, unmatched = loaded.apply(dirty.findings)
        assert new == [] and len(baselined) == 1 and unmatched == []

    def test_fingerprint_ignores_line_numbers(self, tmp_path):
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        moved = run_lint(tmp_path, {"bad.py": "\n\n\n" + RL002_BAD})
        assert [fingerprint(f) for f in dirty.findings] == [
            fingerprint(f) for f in moved.findings
        ]

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(BaselineError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# SARIF


class TestSarifReporter:
    def test_findings_become_new_results(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL002_BAD})
        doc = json.loads(render_sarif(result))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        (sarif_result,) = [
            r for r in run["results"] if r["ruleId"] == "RL002"
        ]
        assert sarif_result["baselineState"] == "new"
        location = sarif_result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] >= 1

    def test_baselined_results_are_unchanged(self, tmp_path):
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        baseline = Baseline.from_findings(dirty.findings)
        again = run_lint(tmp_path, {"bad.py": RL002_BAD}, baseline=baseline)
        doc = json.loads(render_sarif(again))
        states = [r["baselineState"] for r in doc["runs"][0]["results"]]
        assert states == ["unchanged"]

    def test_suppressions_carry_justification(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED})
        doc = json.loads(render_sarif(result))
        (sarif_result,) = doc["runs"][0]["results"]
        (suppression,) = sarif_result["suppressions"]
        assert suppression["kind"] == "inSource"
        assert "bounded" in suppression["justification"]

    def test_errors_become_notifications(self, tmp_path):
        result = run_lint(tmp_path, {"broken.py": "def f(:\n"})
        doc = json.loads(render_sarif(result))
        invocation = doc["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]


# ---------------------------------------------------------------------------
# Engine, reporters, CLI


class TestEngine:
    def test_exit_codes(self, tmp_path):
        clean = run_lint(tmp_path, {"ok.py": "x = 1\n"})
        assert clean.exit_code() == 0
        dirty = run_lint(tmp_path, {"bad.py": RL002_BAD})
        assert dirty.exit_code() == 1

    def test_unknown_rule_id_is_an_error(self, tmp_path):
        result = run_lint(tmp_path, {"ok.py": "x = 1\n"}, rule_ids=["RL999"])
        assert result.exit_code() == 2
        assert "RL999" in result.errors[0]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        result = run_lint(tmp_path, {"broken.py": "def f(:\n"})
        assert result.exit_code() == 2
        assert "broken.py" in result.errors[0]

    def test_rule_subset_runs_only_selected(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"bad.py": RL002_BAD + RL005_BAD},
            rule_ids=["RL005"],
        )
        assert rules_fired(result) == ["RL005"]


class TestReporters:
    def test_text_report_lists_findings_and_summary(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL002_BAD})
        text = render_text(result)
        assert "bad.py:" in text and "RL002" in text
        assert "1 finding(s)" in text

    def test_json_report_round_trips(self, tmp_path):
        result = run_lint(tmp_path, {"bad.py": RL002_BAD})
        payload = json.loads(render_json(result))
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "RL002"
        assert payload["findings"][0]["path"].endswith("bad.py")
        assert {r["id"] for r in payload["rules"]} >= {"RL001", "RL006"}

    def test_json_report_carries_suppressions(self, tmp_path):
        result = run_lint(tmp_path, {"s.py": SUPPRESSED})
        payload = json.loads(render_json(result))
        assert payload["suppressed"][0]["suppressed"] is True
        assert "bounded" in payload["suppressed"][0]["reason"]


class TestConfig:
    def test_glob_double_star_crosses_directories(self, tmp_path):
        config = config_from_mapping(tmp_path, {"RL002": ["src/**/*.py"]})
        assert config.governs("RL002", "src/repro/core/bsp.py")
        assert not config.governs("RL002", "tests/test_bsp.py")

    def test_single_star_stays_within_directory(self, tmp_path):
        config = config_from_mapping(tmp_path, {"RL002": ["src/*.py"]})
        assert config.governs("RL002", "src/top.py")
        assert not config.governs("RL002", "src/repro/deep.py")

    def test_empty_list_disables_a_rule(self, tmp_path):
        config = config_from_mapping(tmp_path, {"RL002": []})
        assert not config.governs("RL002", "src/repro/core/bsp.py")

    def test_malformed_block_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            config_from_mapping(tmp_path, {"RL002": "not-a-list"})

    def test_load_config_reads_repo_pyproject(self):
        config = load_config(REPO_ROOT)
        assert isinstance(config, LintConfig)
        assert config.root == REPO_ROOT
        assert config.governs("RL002", "src/repro/rdf/csr.py")
        assert not config.governs("RL002", "src/repro/serve/server.py")


# ---------------------------------------------------------------------------
# The repository itself


class TestRepositoryInvariants:
    def test_repo_lints_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_lint_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rule_id in ALL_RULE_IDS:
            assert rule_id in proc.stdout
