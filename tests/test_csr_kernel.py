"""The CSR BFS kernel must agree with the generator traversal path on
every operation it replaces: TQSP construction (exact status, looseness,
keyword vertices AND reconstructed paths), co-minimal covers, and the
alpha-radius word neighborhoods of the preprocessing pass."""

import math
import random

import pytest

from repro.alpha.index import AlphaIndex
from repro.alpha.neighborhood import place_word_neighborhood
from repro.core.semantic_place import SearchStatus, SemanticPlaceSearcher
from repro.core.runtime import TQSPRuntime
from repro.rdf.csr import (
    BFSScratch,
    CSRAdjacency,
    csr_cominimal_covers,
    csr_tightest,
    csr_word_neighborhood,
)
from repro.rdf.graph import RDFGraph
from repro.spatial.geometry import Point
from repro.spatial.rtree import RTree
from repro.text.inverted import InvertedIndex, build_query_map

TERMS = ["alpha", "beta", "gamma", "delta", "epsilon"]


def random_graph(rng, vertex_count=40, edge_factor=2.5, place_share=0.3):
    graph = RDFGraph()
    for index in range(vertex_count):
        document = frozenset(
            rng.sample(TERMS, rng.randint(0, min(3, len(TERMS))))
        )
        location = None
        if rng.random() < place_share:
            location = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
        graph.add_vertex("v%d" % index, document=document, location=location)
    for _ in range(int(vertex_count * edge_factor)):
        a = rng.randrange(vertex_count)
        b = rng.randrange(vertex_count)
        if a != b:
            graph.add_edge(a, b)
    return graph


class TestCSRAdjacency:
    def test_snapshot_matches_adjacency_lists(self):
        rng = random.Random(7)
        graph = random_graph(rng)
        csr = CSRAdjacency.from_graph(graph)
        assert csr.vertex_count == graph.vertex_count
        for vertex in range(graph.vertex_count):
            assert list(csr.out_neighbors(vertex)) == list(
                graph.out_neighbors(vertex)
            )
            assert list(csr.in_neighbors(vertex)) == list(
                graph.in_neighbors(vertex)
            )

    def test_size_bytes_positive(self):
        graph = random_graph(random.Random(8))
        assert CSRAdjacency.from_graph(graph).size_bytes() > 0


class TestScratch:
    def test_epoch_reuse_no_clearing(self):
        scratch = BFSScratch(4)
        first = scratch.next_epoch()
        scratch.visited[2] = first
        second = scratch.next_epoch()
        assert second == first + 1
        assert scratch.visited[2] != second  # stale tag is invisible

    def test_epoch_rollover_resets_tags(self):
        scratch = BFSScratch(3)
        scratch.visited[1] = 12345
        scratch.epoch = 2**32 - 2
        epoch = scratch.next_epoch()
        assert epoch == 1
        assert list(scratch.visited) == [0, 0, 0]

    def test_ensure_grows(self):
        scratch = BFSScratch(2)
        scratch.ensure(10)
        assert scratch.capacity == 10
        assert len(scratch.visited) == 10
        assert len(scratch.parent) == 10


class TestTightestAgreement:
    @pytest.mark.parametrize("undirected", [False, True])
    def test_matches_generator_path_on_random_graphs(self, undirected):
        rng = random.Random(13)
        for trial in range(25):
            graph = random_graph(rng)
            inverted = InvertedIndex.build(graph)
            csr = CSRAdjacency.from_graph(graph)
            scratch = BFSScratch(csr.vertex_count)
            searcher = SemanticPlaceSearcher(graph, undirected=undirected)
            keywords = rng.sample(TERMS, rng.randint(1, 3))
            query_map = build_query_map(inverted, keywords)
            place = rng.randrange(graph.vertex_count)
            threshold = rng.choice([math.inf, 2.0, 5.0, 9.0])

            expected = searcher.tightest(
                keywords, place, query_map, looseness_threshold=threshold
            )
            got = csr_tightest(
                csr,
                scratch,
                place,
                keywords,
                query_map,
                looseness_threshold=threshold,
                undirected=undirected,
            )
            assert got.status is expected.status, trial
            assert got.looseness == expected.looseness, trial
            assert got.keyword_vertices == expected.keyword_vertices, trial
            assert got.vertices_visited == expected.vertices_visited, trial
            if expected.status is SearchStatus.COMPLETE:
                for term, vertex in expected.keyword_vertices.items():
                    assert got.path_to(vertex, place) == expected.path_to(
                        vertex, place
                    ), (trial, term)

    def test_scratch_reuse_across_searches(self):
        rng = random.Random(99)
        graph = random_graph(rng, vertex_count=30)
        inverted = InvertedIndex.build(graph)
        csr = CSRAdjacency.from_graph(graph)
        scratch = BFSScratch(csr.vertex_count)
        searcher = SemanticPlaceSearcher(graph)
        keywords = TERMS[:2]
        query_map = build_query_map(inverted, keywords)
        for place in range(graph.vertex_count):
            expected = searcher.tightest(keywords, place, query_map)
            got = csr_tightest(csr, scratch, place, keywords, query_map)
            assert (got.status, got.looseness, got.keyword_vertices) == (
                expected.status,
                expected.looseness,
                expected.keyword_vertices,
            ), place

    def test_searcher_dispatches_to_kernel(self):
        rng = random.Random(5)
        graph = random_graph(rng)
        inverted = InvertedIndex.build(graph)
        runtime = TQSPRuntime(csr=CSRAdjacency.from_graph(graph))
        fast = SemanticPlaceSearcher(graph, runtime=runtime)
        slow = SemanticPlaceSearcher(graph)
        keywords = TERMS[:2]
        query_map = build_query_map(inverted, keywords)
        for place in range(graph.vertex_count):
            a = fast.tightest(keywords, place, query_map)
            b = slow.tightest(keywords, place, query_map)
            assert (a.status, a.looseness, a.keyword_vertices) == (
                b.status,
                b.looseness,
                b.keyword_vertices,
            )

    def test_bad_vertex_raises(self):
        graph = random_graph(random.Random(1), vertex_count=5)
        csr = CSRAdjacency.from_graph(graph)
        scratch = BFSScratch(csr.vertex_count)
        with pytest.raises(IndexError):
            csr_tightest(csr, scratch, 99, ["alpha"], {})

    def test_empty_keywords_raise(self):
        graph = random_graph(random.Random(2), vertex_count=5)
        csr = CSRAdjacency.from_graph(graph)
        scratch = BFSScratch(csr.vertex_count)
        with pytest.raises(ValueError):
            csr_tightest(csr, scratch, 0, [], {})


class TestCominimalCoversAgreement:
    @pytest.mark.parametrize("undirected", [False, True])
    def test_matches_generator_path(self, undirected):
        rng = random.Random(23)
        for trial in range(15):
            graph = random_graph(rng)
            inverted = InvertedIndex.build(graph)
            csr = CSRAdjacency.from_graph(graph)
            scratch = BFSScratch(csr.vertex_count)
            searcher = SemanticPlaceSearcher(graph, undirected=undirected)
            keywords = rng.sample(TERMS, rng.randint(1, 3))
            query_map = build_query_map(inverted, keywords)
            place = rng.randrange(graph.vertex_count)
            expected = searcher.cominimal_covers(keywords, place, query_map)
            got = csr_cominimal_covers(
                csr, scratch, place, keywords, query_map, undirected=undirected
            )
            assert got == expected, trial


class TestWordNeighborhoodAgreement:
    @pytest.mark.parametrize("undirected", [False, True])
    @pytest.mark.parametrize("alpha", [0, 1, 3])
    def test_matches_generator_path(self, alpha, undirected):
        rng = random.Random(31)
        graph = random_graph(rng)
        csr = CSRAdjacency.from_graph(graph)
        scratch = BFSScratch(csr.vertex_count)
        for place in range(graph.vertex_count):
            expected = place_word_neighborhood(
                graph, place, alpha, undirected=undirected
            )
            got = csr_word_neighborhood(
                csr, scratch, graph.document, place, alpha, undirected=undirected
            )
            assert got == expected, place

    def test_alpha_index_invariant_under_kernel(self):
        rng = random.Random(37)
        graph = random_graph(rng, vertex_count=60, place_share=0.4)
        rtree = RTree.bulk_load(graph.places())
        csr = CSRAdjacency.from_graph(graph)
        baseline = AlphaIndex(graph, rtree, alpha=2)
        kernel = AlphaIndex(graph, rtree, alpha=2, csr=csr)
        assert kernel._place_postings == baseline._place_postings
        assert kernel._node_postings == baseline._node_postings
