"""Top-k keyword search (the location-unaware prior art, Example 1)."""

import pytest

from repro.core.keyword_search import keyword_search
from repro.core.semantic_place import SearchStatus, SemanticPlaceSearcher
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, build_example_graph
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.text.inverted import InvertedIndex, build_query_map


@pytest.fixture(scope="module")
def example():
    graph = build_example_graph()
    return graph, InvertedIndex.build(graph)


class TestExample1:
    """Example 1: top-1 answer for {ancient, roman, catholic, history} is
    {p2, v6, v7, v8} rooted at p2 with looseness 3."""

    def test_top1(self, example):
        graph, index = example
        results = keyword_search(graph, index, EXAMPLE_KEYWORDS, k=1)
        assert len(results) == 1
        top = results[0]
        assert top.root_label == "p2"
        assert top.looseness == 3.0
        labels = {graph.label(v) for v in top.tree_vertices()}
        assert labels == {"p2", "v6", "v7", "v8"}

    def test_normalized_looseness(self, example):
        graph, index = example
        results = keyword_search(
            graph, index, EXAMPLE_KEYWORDS, k=1, normalized=True
        )
        assert results[0].looseness == 4.0  # Definition 2 adds the +1

    def test_ranking_order(self, example):
        graph, index = example
        results = keyword_search(graph, index, EXAMPLE_KEYWORDS, k=5)
        loosenesses = [tree.looseness for tree in results]
        assert loosenesses == sorted(loosenesses)
        # p1's tree (looseness 5 = 6-1) ranks behind p2's (3).
        assert results[0].root_label == "p2"
        labels = [tree.root_label for tree in results]
        assert "p1" in labels

    def test_roots_need_not_be_places(self, example):
        graph, index = example
        # "history" alone: v4, v7, v8 are themselves roots with looseness 0.
        results = keyword_search(graph, index, ["history"], k=10)
        zero_roots = {t.root_label for t in results if t.looseness == 0.0}
        assert {"v4", "v7", "v8"} <= zero_roots

    def test_unmatchable_keywords_empty(self, example):
        graph, index = example
        assert keyword_search(graph, index, ["zzzz"], k=3) == []

    def test_duplicate_keywords_collapsed(self, example):
        graph, index = example
        results = keyword_search(graph, index, ["history", "history"], k=1)
        assert results[0].looseness == 0.0

    def test_validation(self, example):
        graph, index = example
        with pytest.raises(ValueError):
            keyword_search(graph, index, [], k=1)
        with pytest.raises(ValueError):
            keyword_search(graph, index, ["x"], k=0)


class TestAgainstExhaustive:
    def test_matches_per_vertex_tqsp(self, tiny_yago_graph):
        """Each reported tree's looseness equals the Algorithm 2 result,
        and the reported set is the true top-k over all vertices."""
        graph = tiny_yago_graph
        index = InvertedIndex.build(graph)
        generator = QueryGenerator(
            graph, index, WorkloadConfig(keyword_count=2, seed=41)
        )
        query = generator.original()
        k = 8
        results = keyword_search(graph, index, query.keywords, k=k)

        searcher = SemanticPlaceSearcher(graph)
        query_map = build_query_map(index, query.keywords)
        all_loosenesses = []
        for vertex in graph.vertices():
            search = searcher.tightest(query.keywords, vertex, query_map)
            if search.status is SearchStatus.COMPLETE:
                all_loosenesses.append(search.looseness - 1.0)
        expected = sorted(all_loosenesses)[:k]
        assert [tree.looseness for tree in results] == expected

    def test_undirected_superset(self, example):
        graph, index = example
        directed = keyword_search(graph, index, ["abbey", "history"], k=5)
        undirected = keyword_search(
            graph, index, ["abbey", "history"], k=5, undirected=True
        )
        # Ignoring directions can only add qualified roots / tighten trees.
        assert len(undirected) >= len(directed)
        if directed and undirected:
            assert undirected[0].looseness <= directed[0].looseness
