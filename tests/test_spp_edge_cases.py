"""Edge cases of the query algorithms that the main suites skim over."""


import pytest

from repro.core.query import KSPQuery
from repro.core.ranking import MultiplicativeRanking
from repro.core.spp import spp_search
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, build_example_graph
from repro.rdf.graph import RDFGraph
from repro.spatial.geometry import Point
from repro.spatial.rtree import RTree
from repro.text.inverted import InvertedIndex
from repro.core.config import EngineConfig


class TestQueryAtPlaceLocation:
    """S(q, p) = 0: the product ranking scores 0 regardless of looseness,
    and the looseness threshold degenerates to +inf (nothing pruned)."""

    def test_zero_distance_place_wins(self, example_engine):
        location = Point(43.13, 5.97)  # exactly p2
        for method in ("bsp", "spp", "sp", "ta"):
            result = example_engine.query(
                location, EXAMPLE_KEYWORDS, k=2, method=method
            )
            assert result[0].root_label == "p2", method
            assert result[0].score == 0.0
            assert result[0].distance == 0.0

    def test_two_zero_distance_places(self):
        graph = RDFGraph()
        a = graph.add_vertex("a", document={"target"}, location=Point(1, 1))
        b = graph.add_vertex("b", document={"target"}, location=Point(1, 1))
        from repro.core.engine import KSPEngine

        engine = KSPEngine(graph, EngineConfig(alpha=1))
        result = engine.query(Point(1, 1), ["target"], k=2)
        assert len(result) == 2
        assert result.scores() == [0.0, 0.0]
        # Deterministic tie-break by root id.
        assert result.roots() == [a, b]


class TestDegenerateGraphs:
    def test_no_places_at_all(self):
        graph = RDFGraph()
        graph.add_vertex("lonely", document={"word"})
        from repro.core.engine import KSPEngine

        engine = KSPEngine(graph, EngineConfig(alpha=1))
        for method in ("bsp", "spp", "sp", "ta"):
            result = engine.query(Point(0, 0), ["word"], k=1, method=method)
            assert len(result) == 0, method

    def test_place_is_its_own_answer(self):
        graph = RDFGraph()
        graph.add_vertex(
            "solo", document={"alpha", "beta"}, location=Point(3, 4)
        )
        from repro.core.engine import KSPEngine

        engine = KSPEngine(graph, EngineConfig(alpha=1))
        result = engine.query(Point(0, 0), ["alpha", "beta"], k=1)
        assert len(result) == 1
        assert result[0].looseness == 1.0  # everything at distance 0
        assert result[0].score == pytest.approx(5.0)  # 1 x dist(3,4)

    def test_self_loop_tolerated(self):
        graph = RDFGraph()
        a = graph.add_vertex("a", document={"x"}, location=Point(0, 0))
        graph.add_edge(a, a)
        from repro.core.engine import KSPEngine

        engine = KSPEngine(graph, EngineConfig(alpha=1))
        result = engine.query(Point(1, 0), ["x"], k=1)
        assert result[0].looseness == 1.0


class TestSPPDirectCall:
    def test_spp_on_raw_components(self):
        graph = build_example_graph()
        inverted = InvertedIndex.build(graph)
        rtree = RTree.bulk_load(graph.places())
        from repro.reach.keyword import KeywordReachabilityIndex

        reach = KeywordReachabilityIndex(graph)
        query = KSPQuery(
            location=Point(43.51, 4.75), keywords=EXAMPLE_KEYWORDS, k=1
        )
        result = spp_search(
            graph, rtree, inverted, reach, query,
            ranking=MultiplicativeRanking(),
        )
        assert result[0].root_label == "p1"

    def test_spp_without_either_rule_is_bsp_equivalent(self):
        graph = build_example_graph()
        inverted = InvertedIndex.build(graph)
        rtree = RTree.bulk_load(graph.places())
        from repro.reach.keyword import KeywordReachabilityIndex

        reach = KeywordReachabilityIndex(graph)
        query = KSPQuery(
            location=Point(43.51, 4.75), keywords=EXAMPLE_KEYWORDS, k=2
        )
        result = spp_search(
            graph, rtree, inverted, reach, query,
            use_rule1=False, use_rule2=False,
        )
        assert [p.root_label for p in result] == ["p1", "p2"]
        assert result.stats.reachability_queries == 0
        assert result.stats.pruned_rule2 == 0
