"""The TA looseness stream: emission order, completeness, exhaustion."""



from repro.core.semantic_place import SearchStatus, SemanticPlaceSearcher
from repro.core.ta import LoosenessStream
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, build_example_graph
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.text.inverted import InvertedIndex, build_query_map


def drain(stream):
    emissions = []
    while True:
        item = stream.next()
        if item is None:
            return emissions
        emissions.append(item)


class TestOnPaperExample:
    def test_emits_both_places_in_looseness_order(self):
        graph = build_example_graph()
        index = InvertedIndex.build(graph)
        stream = LoosenessStream(graph, index, EXAMPLE_KEYWORDS)
        emissions = drain(stream)
        labels = [(graph.label(place), looseness) for looseness, place in emissions]
        assert labels == [("p2", 4.0), ("p1", 6.0)]

    def test_unqualified_keywords_emit_nothing(self):
        graph = build_example_graph()
        index = InvertedIndex.build(graph)
        stream = LoosenessStream(graph, index, ("church", "architecture"))
        assert drain(stream) == []

    def test_single_keyword(self):
        graph = build_example_graph()
        index = InvertedIndex.build(graph)
        stream = LoosenessStream(graph, index, ("history",))
        emissions = drain(stream)
        labels = [(graph.label(place), looseness) for looseness, place in emissions]
        # p2 reaches history at 1 (L=2), p1 at 2 (L=3).
        assert labels == [("p2", 2.0), ("p1", 3.0)]

    def test_lower_bound_never_decreases(self):
        graph = build_example_graph()
        index = InvertedIndex.build(graph)
        stream = LoosenessStream(graph, index, EXAMPLE_KEYWORDS)
        previous = 0.0
        while True:
            bound = stream.lower_bound()
            assert bound >= previous - 1e-9
            item = stream.next()
            if item is None:
                break
            # Every emission respects the bound published before it.
            assert item[0] >= previous - 1e-9
            previous = item[0]


class TestOnSyntheticCorpus:
    def test_matches_per_place_tqsp_computation(self, tiny_yago_graph):
        """Stream emissions must equal the looseness of each place's TQSP
        computed independently by Algorithm 2, in sorted order."""
        graph = tiny_yago_graph
        index = InvertedIndex.build(graph)
        generator = QueryGenerator(
            graph, index, WorkloadConfig(keyword_count=2, seed=77)
        )
        query = generator.original()
        stream = LoosenessStream(graph, index, query.keywords)
        emissions = drain(stream)

        searcher = SemanticPlaceSearcher(graph)
        query_map = build_query_map(index, query.keywords)
        expected = []
        for place, _ in graph.places():
            search = searcher.tightest(query.keywords, place, query_map)
            if search.status is SearchStatus.COMPLETE:
                expected.append((search.looseness, place))

        assert sorted(emissions) == sorted(expected)
        loosenesses = [looseness for looseness, _ in emissions]
        assert loosenesses == sorted(loosenesses)

    def test_no_duplicate_places(self, tiny_dbpedia_graph):
        graph = tiny_dbpedia_graph
        index = InvertedIndex.build(graph)
        generator = QueryGenerator(
            graph, index, WorkloadConfig(keyword_count=2, seed=13)
        )
        query = generator.original()
        stream = LoosenessStream(graph, index, query.keywords)
        places = [place for _, place in drain(stream)]
        assert len(places) == len(set(places))
