"""End-to-end suite for the ``/v1/debug/*`` introspection endpoints and
the correlated-telemetry contract (live sockets, no handler mocking).

The acceptance bar: one query issued with ``X-Request-Id`` and a W3C
``traceparent`` header must be correlatable across every surface — the
wire response, the flight-recorder entry in ``/v1/debug/queries``, the
latency-histogram exemplar in ``/v1/metrics`` and the exported
``trace_events`` document — by its ids alone.
"""

import contextlib
import json
import threading

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.serve import KSPServer, ServeConfig

from tests.test_serve import GatedEngine, post_query, request

TRACEPARENT = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"


def make_engine(flight_recorder_size=8):
    return KSPEngine(
        build_example_graph(),
        EngineConfig(alpha=3, flight_recorder_size=flight_recorder_size),
    )


@contextlib.contextmanager
def serving(engine=None, **serve_kwargs):
    engine = engine if engine is not None else make_engine()
    with KSPServer(engine, ServeConfig(**serve_kwargs)) as server:
        yield server, engine


def example_body(**extra):
    body = {
        "location": [Q1.x, Q1.y],
        "keywords": list(EXAMPLE_KEYWORDS),
        "k": 2,
    }
    body.update(extra)
    return body


def get_json(port, path):
    status, body, _ = request(port, "GET", path)
    return status, body


# ----------------------------------------------------------------------
# /v1/debug/queries


class TestDebugQueries:
    def test_served_query_is_recorded_with_serving_fields(self):
        with serving() as (server, engine):
            status, _, _ = post_query(
                server.port,
                example_body(),
                headers={"X-Request-Id": "dbg-1"},
            )
            assert status == 200
            status, body = get_json(server.port, "/v1/debug/queries")
            assert status == 200
            entry = body["queries"][0]
            assert entry["request_id"] == "dbg-1"
            assert entry["endpoint"] == "/v1/query"
            assert entry["status"] == 200
            assert entry["outcome"] == "ok"
            assert entry["admission_wait_seconds"] is not None
            assert entry["keywords"] == list(EXAMPLE_KEYWORDS)
            assert entry["counters"]["tqsp_computations"] >= 1
            assert body["count"] == len(body["queries"])

    def test_ring_buffer_evicts_oldest_over_http(self):
        with serving(make_engine(flight_recorder_size=4)) as (server, _):
            for index in range(7):
                status, _, _ = post_query(
                    server.port,
                    example_body(),
                    headers={"X-Request-Id": "evict-%d" % index},
                )
                assert status == 200
            status, body = get_json(server.port, "/v1/debug/queries")
            assert status == 200
            ids = [entry["request_id"] for entry in body["queries"]]
            assert ids == ["evict-6", "evict-5", "evict-4", "evict-3"]
            assert body["capacity"] == 4
            assert body["recorded_total"] == 7
            assert body["evicted"] == 3

    def test_outcome_and_limit_filters(self):
        with serving() as (server, _):
            for index in range(3):
                post_query(
                    server.port,
                    example_body(),
                    headers={"X-Request-Id": "f-%d" % index},
                )
            status, body = get_json(
                server.port, "/v1/debug/queries?outcome=timeout"
            )
            assert status == 200 and body["queries"] == []
            status, body = get_json(
                server.port, "/v1/debug/queries?outcome=ok&limit=2"
            )
            assert status == 200 and len(body["queries"]) == 2

    def test_min_ms_filter(self):
        with serving() as (server, _):
            post_query(server.port, example_body())
            status, body = get_json(
                server.port, "/v1/debug/queries?min_ms=60000"
            )
            assert status == 200
            assert body["queries"] == []

    def test_bad_filter_values_answer_400(self):
        with serving() as (server, _):
            status, body = get_json(
                server.port, "/v1/debug/queries?limit=banana"
            )
            assert status == 400 and "limit" in body["error"]
            status, body = get_json(
                server.port, "/v1/debug/queries?outcome=exploded"
            )
            assert status == 400 and "outcome" in body["error"]
            status, body = get_json(
                server.port, "/v1/debug/queries?min_ms=-5"
            )
            assert status == 400 and "min_ms" in body["error"]

    def test_rejected_requests_are_recorded(self):
        engine = make_engine()
        gated = GatedEngine(engine)
        with serving(gated, workers=1, queue_depth=0) as (server, _):
            blocker = threading.Thread(
                target=post_query,
                args=(server.port, example_body()),
                kwargs={"headers": {"X-Request-Id": "holder"}},
            )
            blocker.start()
            assert gated.entered.acquire(timeout=30.0)
            try:
                status, _, _ = post_query(
                    server.port,
                    example_body(),
                    headers={"X-Request-Id": "refused"},
                )
                assert status == 429
                status, body = get_json(
                    server.port, "/v1/debug/queries?outcome=rejected"
                )
                assert status == 200
                entry = body["queries"][0]
                assert entry["request_id"] == "refused"
                assert entry["status"] == 429
                assert entry["endpoint"] == "/v1/query"
            finally:
                gated.release.set()
                blocker.join(timeout=30.0)


# ----------------------------------------------------------------------
# /v1/debug/inflight


class TestDebugInflight:
    def test_live_query_is_visible_with_phase_and_age(self):
        engine = make_engine()
        gated = GatedEngine(engine)
        with serving(gated, workers=2, queue_depth=4) as (server, _):
            client = threading.Thread(
                target=post_query,
                args=(server.port, example_body()),
                kwargs={"headers": {"X-Request-Id": "slow-1"}},
            )
            client.start()
            assert gated.entered.acquire(timeout=30.0)
            try:
                status, body = get_json(server.port, "/v1/debug/inflight")
                assert status == 200
                assert body["count"] == 1
                live = body["inflight"][0]
                assert live["request_id"] == "slow-1"
                assert live["endpoint"] == "/v1/query"
                assert live["phase"] == "executing"
                assert live["age_seconds"] >= 0.0
            finally:
                gated.release.set()
                client.join(timeout=30.0)
            status, body = get_json(server.port, "/v1/debug/inflight")
            assert status == 200 and body["inflight"] == []


# ----------------------------------------------------------------------
# /v1/debug/engine


class TestDebugEngine:
    def test_snapshot_reflects_engine_and_serve_state(self):
        with serving(workers=3, queue_depth=5) as (server, engine):
            status, body = get_json(server.port, "/v1/debug/engine")
            assert status == 200
            assert body["manifest_hash"] == engine.manifest_hash
            assert body["uptime_seconds"] > 0.0
            dataset = engine.dataset_report()
            assert body["dataset"] == dataset
            assert body["config"]["alpha"] == 3
            assert body["config"]["flight_recorder_size"] == 8
            assert body["flight_recorder"]["capacity"] == 8
            assert body["admission"] == {
                "active": 0,
                "queued": 0,
                "workers": 3,
                "queue_depth": 5,
            }
            assert body["serve_config"]["workers"] == 3
            assert body["tqsp_cache"] is not None

    def test_debug_endpoints_answer_503_until_ready(self):
        loaded = threading.Event()

        def loader():
            loaded.wait(timeout=30.0)
            return make_engine()

        with KSPServer(engine_loader=loader, config=ServeConfig()) as server:
            try:
                for path in (
                    "/v1/debug/queries",
                    "/v1/debug/inflight",
                    "/v1/debug/engine",
                ):
                    status, body = get_json(server.port, path)
                    assert status == 503
                    assert "loading" in body["error"]
            finally:
                loaded.set()

    def test_unknown_debug_path_is_404(self):
        with serving() as (server, _):
            status, body = get_json(server.port, "/v1/debug/nonsense")
            assert status == 404


# ----------------------------------------------------------------------
# Correlation: one request, every telemetry surface


class TestCorrelation:
    def test_request_correlates_across_all_surfaces(self):
        from repro.obs.log import set_sink

        records = []
        previous = set_sink(records.append)
        try:
            with serving() as (server, engine):
                status, body, headers = post_query(
                    server.port,
                    example_body(),
                    headers={
                        "X-Request-Id": "corr-1",
                        "traceparent": TRACEPARENT,
                    },
                    path="/v1/query?trace=1",
                )
                assert status == 200

                # 1. The wire response carries both ids and trace_events.
                assert headers["X-Request-Id"] == "corr-1"
                assert body["request_id"] == "corr-1"
                assert body["trace_id"] == TRACE_ID
                document = json.loads(json.dumps(body["trace_events"]))
                assert document["otherData"]["request_id"] == "corr-1"
                assert document["otherData"]["trace_id"] == TRACE_ID
                assert any(
                    event.get("cat") == "phase"
                    for event in document["traceEvents"]
                )

                # 2. The flight recorder names the same request.
                status, debug = get_json(server.port, "/v1/debug/queries")
                assert status == 200
                entry = debug["queries"][0]
                assert entry["request_id"] == "corr-1"
                assert entry["trace_id"] == TRACE_ID
                assert entry["endpoint"] == "/v1/query"
                assert entry["phases"]

                # 3. The latency histogram exemplar links back to it.
                status, text = get_json(server.port, "/v1/metrics")
                assert status == 200
                exemplar_lines = [
                    line
                    for line in text.splitlines()
                    if 'request_id="corr-1"' in line
                ]
                assert exemplar_lines, "no exemplar carries the request id"
                for line in exemplar_lines:
                    sample, _, suffix = line.partition(" # ")
                    assert "_bucket" in sample
                    label_part, value = suffix.rsplit(" ", 1)
                    assert label_part == '{request_id="corr-1"}'
                    float(value)  # exemplar value parses as a number
        finally:
            set_sink(previous)

    def test_batch_slots_inherit_the_trace_id(self):
        with serving() as (server, _):
            status, body, _ = post_query(
                server.port,
                {"queries": [example_body(), example_body()]},
                headers={
                    "X-Request-Id": "b-1",
                    "traceparent": TRACEPARENT,
                },
                path="/v1/batch",
            )
            assert status == 200
            assert [r["request_id"] for r in body["results"]] == [
                "b-1-0",
                "b-1-1",
            ]
            assert all(r["trace_id"] == TRACE_ID for r in body["results"])
            status, debug = get_json(
                server.port, "/v1/debug/queries?limit=2"
            )
            assert status == 200
            assert {e["request_id"] for e in debug["queries"]} == {
                "b-1-0",
                "b-1-1",
            }
            assert all(
                e["endpoint"] == "/v1/batch" and e["status"] == 200
                for e in debug["queries"]
            )

    def test_malformed_traceparent_is_ignored_not_fatal(self):
        with serving() as (server, _):
            status, body, _ = post_query(
                server.port,
                example_body(),
                headers={
                    "X-Request-Id": "bad-tp",
                    "traceparent": "definitely-not-a-traceparent",
                },
            )
            assert status == 200
            assert body["trace_id"] is None

    def test_internal_error_logs_structured_record(self):
        from repro.obs.log import set_sink

        class ExplodingEngine:
            flight_recorder = make_engine().flight_recorder

            def query(self, *args, **kwargs):
                raise RuntimeError("engine exploded")

        records = []
        previous = set_sink(records.append)
        try:
            with serving(ExplodingEngine()) as (server, _):
                status, body, _ = post_query(
                    server.port,
                    example_body(),
                    headers={"X-Request-Id": "boom-1"},
                )
                assert status == 500
                assert body["request_id"] == "boom-1"
            errors = [r for r in records if r["level"] == "error"]
            assert errors, "500 path must emit a structured error record"
            record = errors[0]
            assert record["event"] == "unhandled_error"
            assert record["request_id"] == "boom-1"
            assert record["endpoint"] == "/v1/query"
            assert "RuntimeError" in record["error"]
            assert "engine exploded" in record["traceback"]
        finally:
            set_sink(previous)


# ----------------------------------------------------------------------
# /v1/debug/load and the per-process provenance fields


class TestDebugLoad:
    def test_recorded_queries_carry_process_provenance(self):
        import os

        with serving() as (server, engine):
            status, _, _ = post_query(
                server.port, example_body(), headers={"X-Request-Id": "prov-1"}
            )
            assert status == 200
            status, body = get_json(server.port, "/v1/debug/queries")
            entry = body["queries"][0]
            assert entry["pid"] == os.getpid()
            assert entry["worker_id"] is None  # single-process server

    def test_load_report_over_http(self):
        with serving() as (server, engine):
            for index in range(3):
                status, _, _ = post_query(
                    server.port,
                    example_body(),
                    headers={"X-Request-Id": "load-%d" % index},
                )
                assert status == 200
            status, body = get_json(server.port, "/v1/debug/load")
            assert status == 200
            assert body["queries"] >= 3
            assert body["outcomes"].get("ok", 0) >= 3
            assert body["latency_buckets"]["+Inf"] == body["queries"]
            assert body["latency_sum_seconds"] > 0
            # A single-engine server has no shard fan-out to report.
            assert body["shards"] == []
            assert body["fanout_mean"] is None
            assert body["pid"] is not None

    def test_debug_metrics_exposes_the_registry_state(self):
        import time

        with serving() as (server, engine):
            status, _, _ = post_query(server.port, example_body())
            assert status == 200
            # The request counter increments as the response is written,
            # so an immediate scrape can race it: poll briefly.
            names = set()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status, body = get_json(server.port, "/v1/debug/metrics")
                assert status == 200
                names = {entry["name"] for entry in body["state"]["series"]}
                if "ksp_http_requests_total" in names:
                    break
                time.sleep(0.05)
            assert "ksp_http_requests_total" in names
            assert "worker" not in body  # single-process server
