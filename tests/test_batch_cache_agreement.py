"""Serving-stack agreement suite.

The fast path (CSR kernel + shared TQSP cache + batched executor) must be
behavior-identical to the seed sequential path: same places, same scores,
same looseness, same keyword vertices, same paths — for every algorithm,
both edge-direction modes, cold or warm cache, sequential or threaded.

Over 50 randomized queries run against both engine configurations; any
divergence in the ranked output is a bug in the kernel, the cache's
threshold interplay, or the executor's thread handling.
"""

import random

import pytest

from repro.core.engine import KSPEngine
from repro.core.query import KSPQuery
from repro.rdf.graph import RDFGraph
from repro.spatial.geometry import Point
from repro.core.config import EngineConfig, QueryOptions

TERMS = ["alpha", "beta", "gamma", "delta", "epsilon"]
METHODS = ("bsp", "spp", "sp", "ta")


def build_graph(seed, vertex_count=60, edge_factor=2.5, place_share=0.35):
    rng = random.Random(seed)
    graph = RDFGraph()
    for index in range(vertex_count):
        document = frozenset(
            rng.sample(TERMS, rng.randint(0, min(3, len(TERMS))))
        )
        location = None
        if rng.random() < place_share:
            location = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
        graph.add_vertex("v%d" % index, document=document, location=location)
    for _ in range(int(vertex_count * edge_factor)):
        a = rng.randrange(vertex_count)
        b = rng.randrange(vertex_count)
        if a != b:
            graph.add_edge(a, b)
    return graph


def random_queries(rng, count):
    queries = []
    for _ in range(count):
        keywords = tuple(rng.sample(TERMS, rng.randint(1, 3)))
        queries.append(
            KSPQuery(
                location=Point(rng.uniform(-5, 5), rng.uniform(-5, 5)),
                keywords=keywords,
                k=rng.randint(1, 4),
            )
        )
    return queries


def fingerprint(result):
    """Everything the ISSUE demands agreement on, plus the TQSP paths."""
    return [
        (
            place.root,
            round(place.score, 9),
            place.looseness,
            place.keyword_vertices,
            place.paths,
        )
        for place in result
    ]


@pytest.fixture(scope="module")
def engines():
    """(seed, fast) engine pairs per direction mode over one shared graph."""
    graph = build_graph(1401)
    pairs = {}
    for undirected in (False, True):
        seed = KSPEngine(
            graph,
            EngineConfig(
                alpha=2,
                undirected=undirected,
                use_csr_kernel=False,
                tqsp_cache_size=0,
            ),
        )
        fast = KSPEngine(graph, EngineConfig(alpha=2, undirected=undirected))
        pairs[undirected] = (seed, fast)
    return pairs


class TestCachedVsUncached:
    @pytest.mark.parametrize("undirected", [False, True])
    @pytest.mark.parametrize("method", METHODS)
    def test_fast_path_matches_seed_path(self, engines, method, undirected):
        # 8 queries x 4 methods x 2 modes = 64 randomized queries, each
        # also re-run warm: the first pass populates the shared cache,
        # the second must answer from it with identical output.
        seed_engine, fast_engine = engines[undirected]
        rng = random.Random(hash((method, undirected)) & 0xFFFF)
        for index, query in enumerate(random_queries(rng, 8)):
            expected = fingerprint(seed_engine.query(query, method=method))
            cold = fast_engine.query(query, method=method)
            assert fingerprint(cold) == expected, (method, undirected, index)
            warm = fast_engine.query(query, method=method)
            assert fingerprint(warm) == expected, (method, undirected, index)

    def test_warm_cache_answers_without_bfs(self, engines):
        _, fast_engine = engines[False]
        query = KSPQuery(
            location=Point(0.5, -0.5), keywords=("alpha", "beta"), k=3
        )
        fast_engine.query(query, method="sp")
        warm = fast_engine.query(query, method="sp")
        stats = warm.stats
        assert stats.cache_hits > 0
        assert stats.vertices_visited == 0


class TestBatchedVsSequential:
    @pytest.mark.parametrize("method", METHODS)
    def test_batch_matches_sequential_seed(self, engines, method):
        seed_engine, fast_engine = engines[False]
        rng = random.Random(2025)
        base = random_queries(rng, 15)
        # Repeat the workload so the shared cache sees every keyword set
        # again mid-batch, across worker threads.
        workload = base + [
            KSPQuery(
                location=Point(q.location.x + 0.1, q.location.y - 0.1),
                keywords=q.keywords,
                k=q.k,
            )
            for q in base
        ]
        expected = [
            fingerprint(seed_engine.query(q, method=method)) for q in workload
        ]
        report = fast_engine.query_batch(
            workload, workers=4, options=QueryOptions(method=method)
        )
        assert len(report.results) == len(workload)
        assert [fingerprint(r) for r in report.results] == expected

    def test_single_worker_batch_matches_threaded(self, engines):
        _, fast_engine = engines[True]
        workload = random_queries(random.Random(77), 12)
        opts = QueryOptions(method="spp")
        threaded = fast_engine.query_batch(workload, workers=4, options=opts)
        sequential = fast_engine.query_batch(workload, workers=1, options=opts)
        assert [fingerprint(r) for r in threaded.results] == [
            fingerprint(r) for r in sequential.results
        ]

    def test_report_accounting(self, engines):
        _, fast_engine = engines[False]
        workload = random_queries(random.Random(3), 6) * 2
        report = fast_engine.query_batch(workload, workers=3, options=QueryOptions(method="sp"))
        assert report.workers == 3
        assert report.method == "sp"
        assert report.wall_seconds > 0
        assert report.queries_per_second > 0
        totals = report.counter_totals()
        assert totals["cache_hits"] > 0
        assert totals["kernel_searches"] > 0
        assert totals["fallback_searches"] == 0
        assert "cache:" in report.summary()

    def test_rejects_zero_workers(self, engines):
        _, fast_engine = engines[False]
        with pytest.raises(ValueError):
            fast_engine.query_batch(
                random_queries(random.Random(4), 2), workers=0
            )
