"""Extended SPARQL string built-ins."""

import pytest

from repro.sparql.ast import Variable
from repro.sparql.eval import QueryEngine
from repro.sparql.store import TripleStore

DATA = """\
<http://x/a> <http://x/name> "Montmajour Abbey" .
<http://x/b> <http://x/name> "Roman Catholic Diocese" .
<http://x/c> <http://x/name> "Saint-Peter Basilica" .
"""


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(TripleStore.from_ntriples(DATA))


def names(rows):
    return sorted(row[Variable("s")].value.rsplit("/", 1)[-1] for row in rows)


class TestStringBuiltins:
    def test_strlen(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(STRLEN(?n) < 17) }"
        )
        assert names(rows) == ["a"]  # "Montmajour Abbey" has 16 chars

    def test_ucase_lcase(self, engine):
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . '
            'FILTER(UCASE(?n) = "MONTMAJOUR ABBEY") }'
        )
        assert names(rows) == ["a"]
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . '
            'FILTER(CONTAINS(LCASE(?n), "catholic")) }'
        )
        assert names(rows) == ["b"]

    def test_strstarts(self, engine):
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . '
            'FILTER(STRSTARTS(?n, "Saint")) }'
        )
        assert names(rows) == ["c"]

    def test_regex(self, engine):
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . '
            'FILTER(REGEX(?n, "^[MR].*(Abbey|Diocese)$")) }'
        )
        assert names(rows) == ["a", "b"]

    def test_regex_case_insensitive_flag(self, engine):
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . '
            'FILTER(REGEX(?n, "abbey", "i")) }'
        )
        assert names(rows) == ["a"]

    def test_regex_invalid_pattern_eliminates(self, engine):
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(REGEX(?n, "([")) }'
        )
        assert rows == []  # error semantics, not a crash
