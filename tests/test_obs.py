"""The observability layer: structured logs, the flight recorder,
W3C trace-context parsing, Chrome trace_event export, and the
histogram fast path with exemplars.

The trace exporter's aggregate form is pinned byte-for-byte against
``tests/golden/trace_example.json`` — a trace rebuilt from the wire is
deterministic by construction, so the golden file guards the export
schema the CI serve-e2e job validates with ``json.load``.
"""

import contextvars
import json
import threading
from pathlib import Path

import pytest

from repro.core.config import EngineConfig
from repro.core.metrics import (
    Histogram,
    MetricsRegistry,
    process_uptime_seconds,
)
from repro.core.trace import QueryTrace
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.obs.log import (
    context_fields,
    get_logger,
    log_context,
    set_sink,
)
from repro.obs.recorder import (
    OUTCOMES,
    FlightRecorder,
    QueryRecord,
)
from repro.obs.traceexport import (
    parse_traceparent,
    render_trace_json,
    trace_events,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The fixed aggregate trace the golden file pins.
GOLDEN_PHASES = {
    "rtree-ascent": {"seconds": 0.001, "count": 4},
    "reachability": {"seconds": 0.0005, "count": 8},
    "tqsp-bfs": {"seconds": 0.0025, "count": 2},
}
GOLDEN_RUNTIME = 0.0045


@pytest.fixture()
def sink():
    """Capture structured log records as dicts; restore the default after."""
    records = []
    previous = set_sink(records.append)
    try:
        yield records
    finally:
        set_sink(previous)


# ----------------------------------------------------------------------
# Structured logging


class TestStructuredLog:
    def test_record_shape_and_sink_capture(self, sink):
        log = get_logger("repro.test")
        returned = log.info("unit_event", request_id="r-1", k=5)
        assert sink == [returned]
        record = sink[0]
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "unit_event"
        assert record["request_id"] == "r-1"
        assert record["k"] == 5
        assert isinstance(record["ts"], float)

    def test_context_binds_and_nests(self, sink):
        log = get_logger("repro.test")
        with log_context(request_id="outer", endpoint="/v1/query"):
            with log_context(request_id="inner"):
                log.info("nested")
            log.info("outer_again")
        log.info("unbound")
        assert sink[0]["request_id"] == "inner"
        assert sink[0]["endpoint"] == "/v1/query"
        assert sink[1]["request_id"] == "outer"
        assert "request_id" not in sink[2]
        assert context_fields() == {}

    def test_copy_context_hands_bindings_to_a_worker_thread(self, sink):
        # New threads start with an empty context; copy_context().run is
        # the sanctioned way to hand request-scoped fields across.
        log = get_logger("repro.test")
        with log_context(request_id="threaded"):
            snapshot = contextvars.copy_context()
        worker = threading.Thread(
            target=lambda: snapshot.run(log.info, "from_thread")
        )
        worker.start()
        worker.join()
        assert sink[0]["request_id"] == "threaded"

    def test_new_threads_start_unbound(self, sink):
        log = get_logger("repro.test")
        with log_context(request_id="not-inherited"):
            worker = threading.Thread(target=lambda: log.info("bare"))
            worker.start()
            worker.join()
        assert "request_id" not in sink[0]

    def test_unserializable_values_are_stringified(self, sink):
        log = get_logger("repro.test")
        log.info("weird", payload=object(), items=[1, {2: object()}])
        line = json.dumps(sink[0])  # must not raise
        assert "object object" in line

    def test_error_with_exc_info_attaches_traceback(self, sink):
        log = get_logger("repro.test")
        try:
            raise ValueError("boom")
        except ValueError:
            log.error("failed", exc_info=True, error="ValueError: boom")
        assert sink[0]["level"] == "error"
        assert "ValueError: boom" in sink[0]["traceback"]


# ----------------------------------------------------------------------
# Flight recorder


def make_record(request_id, outcome="ok", runtime=0.01):
    return QueryRecord(
        request_id=request_id,
        method="sp",
        keywords=("ancient",),
        k=2,
        outcome=outcome,
        runtime_seconds=runtime,
    )


class TestFlightRecorder:
    def test_record_stamps_sequence_and_wall_clock(self):
        recorder = FlightRecorder(capacity=4)
        first = recorder.record(make_record("a"))
        second = recorder.record(make_record("b"))
        assert (first.sequence, second.sequence) == (1, 2)
        assert first.recorded_at > 0
        snapshot = recorder.snapshot()
        assert [entry["request_id"] for entry in snapshot] == ["b", "a"]

    def test_ring_eviction_keeps_newest(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record(make_record("q-%d" % index))
        snapshot = recorder.snapshot()
        assert [entry["request_id"] for entry in snapshot] == [
            "q-9",
            "q-8",
            "q-7",
        ]
        counters = recorder.counters()
        assert counters["recorded_total"] == 10
        assert counters["buffered"] == 3
        assert counters["evicted"] == 7
        assert counters["capacity"] == 3

    def test_snapshot_filters(self):
        recorder = FlightRecorder(capacity=16)
        recorder.record(make_record("fast", runtime=0.001))
        recorder.record(make_record("slow", runtime=0.5))
        recorder.record(make_record("late", outcome="timeout", runtime=2.0))
        assert [
            e["request_id"] for e in recorder.snapshot(outcome="timeout")
        ] == ["late"]
        assert [
            e["request_id"]
            for e in recorder.snapshot(min_runtime_seconds=0.1)
        ] == ["late", "slow"]
        assert len(recorder.snapshot(limit=1)) == 1

    def test_annotate_targets_newest_match(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(make_record("dup"))
        recorder.record(make_record("dup"))
        assert recorder.annotate("dup", status=504, endpoint="/v1/query")
        newest, oldest = recorder.snapshot()
        assert newest["status"] == 504 and newest["endpoint"] == "/v1/query"
        assert oldest["status"] is None
        assert not recorder.annotate("missing", status=200)

    def test_inflight_lifecycle(self):
        recorder = FlightRecorder(capacity=8)
        handle = recorder.begin(
            request_id="live-1",
            endpoint="/v1/query",
            method="sp",
            keywords=("roman",),
            k=3,
            phase="admission-queue",
        )
        handle.set_phase("executing")
        live = recorder.inflight()
        assert len(live) == 1
        assert live[0]["request_id"] == "live-1"
        assert live[0]["phase"] == "executing"
        assert live[0]["age_seconds"] >= 0.0
        recorder.end(handle)
        assert recorder.inflight() == []
        assert recorder.counters()["inflight"] == 0

    def test_engine_records_every_query(self):
        engine = KSP_ENGINE()
        recorder = engine.flight_recorder
        before = recorder.counters()["recorded_total"]
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method="sp", request_id="obs-1", trace=True
        )
        assert recorder.counters()["recorded_total"] == before + 1
        entry = recorder.snapshot(limit=1)[0]
        assert entry["request_id"] == "obs-1"
        assert entry["outcome"] == "ok"
        assert entry["method"] == "sp"
        assert entry["phases"]  # tracing was on: phase breakdown kept
        assert entry["counters"]["tqsp_computations"] == (
            result.stats.tqsp_computations
        )

    def test_outcomes_tuple_is_the_debug_contract(self):
        assert OUTCOMES == ("ok", "timeout", "error", "rejected")


def KSP_ENGINE():
    from repro.core.engine import KSPEngine

    return KSPEngine(
        build_example_graph(), EngineConfig(alpha=3, flight_recorder_size=8)
    )


# ----------------------------------------------------------------------
# W3C traceparent


class TestTraceparent:
    def test_valid_header_yields_trace_id(self):
        header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        assert (
            parse_traceparent(header)
            == "4bf92f3577b34da6a3ce929d0e0e4736"
        )

    def test_whitespace_is_tolerated(self):
        header = " 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00 "
        assert parse_traceparent(header) is not None

    def test_future_version_with_extra_fields_is_tolerated(self):
        header = (
            "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what"
        )
        assert parse_traceparent(header) is not None

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",  # 3 fields
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  # ff
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",  # zero
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  # zero
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  # upper
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x",  # v00 extra
            "00-4bf92f3577b34da6-00f067aa0ba902b7-01",  # short trace id
        ],
    )
    def test_malformed_headers_yield_none(self, header):
        assert parse_traceparent(header) is None


# ----------------------------------------------------------------------
# Chrome trace_event export


class TestTraceExport:
    def test_live_trace_exports_real_timeline_spans(self):
        trace = QueryTrace()
        trace.add("tqsp-bfs", 0.002)
        trace.add("rtree-ascent", 0.001)
        assert len(trace.timeline()) == 2
        document = trace_events(trace, request_id="t-1")
        spans = [
            e for e in document["traceEvents"] if e.get("cat") == "phase"
        ]
        assert [span["name"] for span in spans] == ["tqsp-bfs", "rtree-ascent"]
        assert all(span["ph"] == "X" for span in spans)
        assert all(span["args"]["request_id"] == "t-1" for span in spans)
        # Real offsets: the second span starts at or after the first's start.
        assert spans[1]["ts"] >= spans[0]["ts"]

    def test_wire_rebuilt_trace_takes_the_aggregate_path(self):
        trace = QueryTrace.from_dict(GOLDEN_PHASES)
        assert trace.timeline() == []
        document = trace_events(trace, runtime_seconds=GOLDEN_RUNTIME)
        spans = [
            e for e in document["traceEvents"] if e.get("cat") == "phase"
        ]
        # Aggregate spans lie end to end in insertion order, plus the
        # (untraced) remainder covering runtime outside every phase.
        assert [span["name"] for span in spans] == [
            "rtree-ascent",
            "reachability",
            "tqsp-bfs",
            "(untraced)",
        ]
        assert spans[0]["ts"] == 0
        assert spans[1]["ts"] == spans[0]["dur"]
        assert spans[0]["args"]["spans"] == 4
        untraced = spans[-1]
        assert untraced["ts"] == 4000 and untraced["dur"] == 500

    def test_enclosing_query_span_and_metadata(self):
        trace = QueryTrace.from_dict(GOLDEN_PHASES)
        document = trace_events(
            trace,
            request_id="t-2",
            trace_id="a" * 32,
            runtime_seconds=GOLDEN_RUNTIME,
        )
        events = document["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "ksp-query"},
        }
        query_spans = [e for e in events if e["name"] == "query"]
        assert len(query_spans) == 1
        assert query_spans[0]["dur"] == 4500
        assert document["otherData"] == {
            "request_id": "t-2",
            "trace_id": "a" * 32,
        }
        thread_names = [
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        ]
        assert thread_names == [
            "rtree-ascent",
            "reachability",
            "tqsp-bfs",
            "(untraced)",
        ]

    def test_golden_trace_export(self):
        trace = QueryTrace.from_dict(GOLDEN_PHASES)
        rendered = (
            render_trace_json(
                trace,
                request_id="golden-trace-1",
                runtime_seconds=GOLDEN_RUNTIME,
            )
            + "\n"
        )
        golden = (GOLDEN_DIR / "trace_example.json").read_text()
        assert rendered == golden

    def test_golden_trace_file_is_canonical_json(self):
        raw = (GOLDEN_DIR / "trace_example.json").read_text()
        parsed = json.loads(raw)
        assert raw == json.dumps(parsed, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Histogram owning-bucket fast path and exemplars


class TestHistogram:
    def test_owning_bucket_is_inclusive_upper_bound(self):
        histogram = Histogram(buckets=(0.1, 0.5, 1.0))
        histogram.observe(0.1)  # exactly on a bound: le="0.1" owns it
        histogram.observe(0.3)
        histogram.observe(0.99)
        counts = histogram.bucket_counts()
        assert counts[0.1] == 1
        assert counts[0.5] == 2
        assert counts[1.0] == 3
        assert counts[float("inf")] == 3

    def test_overflow_lands_in_inf_only(self):
        histogram = Histogram(buckets=(0.1, 0.5))
        histogram.observe(7.0)
        counts = histogram.bucket_counts()
        assert counts[0.1] == 0 and counts[0.5] == 0
        assert counts[float("inf")] == 1
        assert histogram.count == 1
        assert histogram.sum == 7.0

    def test_cumulative_rendering_matches_per_bucket_counts(self):
        histogram = Histogram(buckets=(0.1, 0.5, 1.0))
        for value in (0.05, 0.05, 0.2, 0.7, 3.0):
            histogram.observe(value)
        lines = histogram._samples("h", ())
        buckets = [line for line in lines if "_bucket" in line]
        assert buckets == [
            'h_bucket{le="0.1"} 2',
            'h_bucket{le="0.5"} 3',
            'h_bucket{le="1"} 4',
            'h_bucket{le="+Inf"} 5',
        ]
        assert lines[-1] == "h_count 5"

    def test_exemplar_renders_on_owning_bucket(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.05, exemplar={"request_id": "ex-1"})
        histogram.observe(0.5)  # no exemplar on this bucket
        lines = histogram._samples("h", ())
        assert 'h_bucket{le="0.1"} 1 # {request_id="ex-1"} 0.05' in lines
        assert 'h_bucket{le="1"} 2' in lines

    def test_latest_exemplar_wins(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(0.2, exemplar={"request_id": "old"})
        histogram.observe(0.4, exemplar={"request_id": "new"})
        (bucket_line,) = [
            line
            for line in histogram._samples("h", ())
            if 'le="1"' in line
        ]
        assert 'request_id="new"' in bucket_line

    def test_registry_renders_exemplars_in_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "t_seconds", "test latency", buckets=(1.0,)
        )
        histogram.observe(0.25, exemplar={"request_id": "r-9"})
        text = registry.render_text()
        assert '# {request_id="r-9"} 0.25' in text

    def test_process_uptime_is_positive_and_monotonic(self):
        first = process_uptime_seconds()
        second = process_uptime_seconds()
        assert 0.0 < first <= second
