"""Property-based fuzzing of the SPARQL BGP evaluator.

A brute-force reference enumerates every assignment of store terms to
query variables and keeps those under which all patterns are present;
the engine's selectivity-ordered backtracking join must produce exactly
the same solution multiset, for arbitrary small stores and patterns.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.ast import SelectQuery, TriplePattern, Variable
from repro.sparql.eval import QueryEngine
from repro.sparql.store import TripleStore

SUBJECTS = [IRI("http://f/s%d" % i) for i in range(3)]
PREDICATES = [IRI("http://f/p%d" % i) for i in range(2)]
OBJECTS = [IRI("http://f/o%d" % i) for i in range(2)] + [Literal("v")]
ALL_TERMS = list(dict.fromkeys(SUBJECTS + PREDICATES + OBJECTS))
VARIABLES = [Variable("a"), Variable("b"), Variable("c")]

triples_strategy = st.lists(
    st.builds(
        Triple,
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.sampled_from(OBJECTS),
    ),
    min_size=0,
    max_size=12,
)

pattern_term = st.one_of(
    st.sampled_from(VARIABLES),
    st.sampled_from(SUBJECTS),
    st.sampled_from(PREDICATES),
    st.sampled_from(OBJECTS),
)

patterns_strategy = st.lists(
    st.builds(TriplePattern, pattern_term, pattern_term, pattern_term),
    min_size=1,
    max_size=3,
)


def naive_solutions(store, patterns):
    """Enumerate all assignments of store terms to the pattern variables."""
    variables = []
    for pattern in patterns:
        for variable in pattern.variables():
            if variable not in variables:
                variables.append(variable)
    solutions = []
    for assignment in itertools.product(ALL_TERMS, repeat=len(variables)):
        binding = dict(zip(variables, assignment))

        def ground(term):
            return binding[term] if isinstance(term, Variable) else term

        if all(
            Triple(ground(p.subject), ground(p.predicate), ground(p.object))
            in store
            for p in patterns
        ):
            solutions.append(binding)
    return solutions


def canonical(rows):
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in row.items())) for row in rows
    )


class TestBGPFuzz:
    @given(triples_strategy, patterns_strategy)
    @settings(max_examples=120, deadline=None)
    def test_join_matches_brute_force(self, triples, patterns):
        store = TripleStore(triples)
        engine = QueryEngine(store)
        query = SelectQuery(variables=[], patterns=list(patterns))
        got = canonical(engine.select(query))
        expected = canonical(naive_solutions(store, patterns))
        assert got == expected

    @given(triples_strategy, patterns_strategy)
    @settings(max_examples=60, deadline=None)
    def test_distinct_is_set_semantics(self, triples, patterns):
        store = TripleStore(triples)
        engine = QueryEngine(store)
        query = SelectQuery(variables=[], patterns=list(patterns), distinct=True)
        got = canonical(engine.select(query))
        assert got == sorted(set(got))

    @given(triples_strategy, patterns_strategy, st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_limit_prefix_property(self, triples, patterns, limit):
        store = TripleStore(triples)
        engine = QueryEngine(store)
        full = SelectQuery(variables=[], patterns=list(patterns))
        limited = SelectQuery(
            variables=[], patterns=list(patterns), limit=limit
        )
        full_rows = engine.select(full)
        limited_rows = engine.select(limited)
        assert len(limited_rows) == min(limit, len(full_rows))
        # Every limited row appears in the full result.
        full_canonical = canonical(full_rows)
        for row in canonical(limited_rows):
            assert row in full_canonical
