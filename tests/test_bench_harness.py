"""The benchmark harness itself: table rendering, env knobs, datasets."""

import pytest

from repro.bench.context import (
    BenchDataset,
    bench_query_count,
    bench_scale,
    bench_timeout,
)
from repro.bench.tables import Table, format_cell, record
from repro.datagen.profiles import TINY_YAGO


class TestFormatCell:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0"),
            (1234.6, "1235"),
            (42.31, "42.3"),
            (3.14159, "3.142"),
            ("text", "text"),
            (7, "7"),
            (float("nan"), "-"),
            (True, "True"),
        ],
    )
    def test_rendering(self, value, expected):
        assert format_cell(value) == expected


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("short", 1)
        table.add_row("much longer name", 123456.0)
        table.add_note("a footnote")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert lines[2].startswith("name")
        assert "much longer name" in text
        assert "* a footnote" in text

    def test_wrong_arity_rejected(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_degenerate_banner_renders_above_data(self):
        table = Table("Demo", ["workers", "speedup"])
        table.add_row(4, 1.0)
        table.mark_degenerate("only 1 usable core(s)")
        lines = table.render().splitlines()
        assert lines[2] == "!! DEGENERATE DATA: only 1 usable core(s) !!"
        assert lines[3].startswith("workers")  # banner precedes the columns

    def test_not_degenerate_by_default(self):
        table = Table("Demo", ["a"])
        table.add_row(1)
        assert table.degenerate is None
        assert "DEGENERATE" not in table.render()

    def test_record_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
        table = Table("T", ["x"])
        table.add_row(1)
        text = record("unit_test_table", table)
        assert (tmp_path / "unit_test_table.txt").read_text() == text

    def test_record_multiple_tables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
        tables = [Table("A", ["x"]), Table("B", ["y"])]
        text = record("unit_test_pair", tables)
        assert "A\n" in text and "B\n" in text


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_QUERIES", raising=False)
        monkeypatch.delenv("REPRO_BENCH_TIMEOUT", raising=False)
        assert bench_scale() == 8000
        assert bench_query_count() == 10
        assert bench_timeout() == 8.0

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1234")
        monkeypatch.setenv("REPRO_BENCH_QUERIES", "3")
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "0.5")
        assert bench_scale() == 1234
        assert bench_query_count() == 3
        assert bench_timeout() == 0.5


class TestBenchDataset:
    @pytest.fixture(scope="class")
    def dataset(self, tiny_yago_graph):
        return BenchDataset(TINY_YAGO, graph=tiny_yago_graph)

    def test_alpha_index_cached(self, dataset):
        first = dataset.alpha_index(2)
        second = dataset.alpha_index(2)
        assert first is second
        assert "alpha_index_2" in dataset.build_seconds

    def test_workload_cached(self, dataset):
        first = dataset.workload("O", count=3, keyword_count=2)
        second = dataset.workload("O", count=3, keyword_count=2)
        assert first is second
        assert len(first) == 3

    def test_run_dispatch(self, dataset):
        query = dataset.workload("O", count=1, keyword_count=2)[0]
        for method in ("bsp", "spp", "sp", "ta"):
            result = dataset.run(query, method, k=2, alpha=2)
            assert result.stats.algorithm in (method.upper(), "SP", "SPP")
        with pytest.raises(ValueError):
            dataset.run(query, "magic")

    def test_k_override(self, dataset):
        query = dataset.workload("O", count=1, keyword_count=2)[0]
        result = dataset.run(query, "sp", k=2, alpha=2)
        assert result.query.k == 2

    def test_aggregate(self, dataset):
        queries = dataset.workload("O", count=3, keyword_count=2)
        aggregate = dataset.aggregate(queries, "sp", k=2, alpha=2)
        assert len(aggregate) == 3
        assert aggregate.mean_runtime_ms > 0

    def test_describe(self, dataset):
        report = dataset.describe()
        assert report["vertices"] == TINY_YAGO.vertex_count
        assert report["places"] > 0
