"""End-to-end integration: N-Triples file on disk -> GraphBuilder ->
KSPEngine -> queries, compared against an engine built on the in-memory
graph directly."""

import pytest

from repro.core.engine import KSPEngine
from repro.datagen import QueryGenerator, WorkloadConfig
from repro.datagen.sampling import induced_subgraph
from repro.datagen.synthetic import graph_to_triples
from repro.rdf import ntriples
from repro.core.config import EngineConfig


@pytest.fixture(scope="module")
def file_engine(tiny_yago_graph, tmp_path_factory):
    """An engine built by writing a 400-vertex corpus to disk as N-Triples
    and ingesting the file."""
    subgraph = induced_subgraph(tiny_yago_graph, list(range(400)))
    path = tmp_path_factory.mktemp("data") / "corpus.nt"
    ntriples.write_file(graph_to_triples(subgraph), path)
    return subgraph, KSPEngine.from_ntriples_file(path, EngineConfig(alpha=2))


class TestFilePipeline:
    def test_counts_survive_serialization(self, file_engine):
        subgraph, engine = file_engine
        assert engine.graph.vertex_count == subgraph.vertex_count
        assert engine.graph.edge_count == subgraph.edge_count
        assert engine.graph.place_count() == subgraph.place_count()

    def test_queries_match_direct_engine(self, file_engine):
        subgraph, engine = file_engine
        direct = KSPEngine(subgraph, EngineConfig(alpha=2))
        generator = QueryGenerator(
            subgraph, direct.inverted_index, WorkloadConfig(keyword_count=2, seed=3)
        )
        for query in generator.workload(5, "O"):
            direct_result = direct.query(query, method="sp")
            file_result = engine.query(query, method="sp")
            # Labels are URI-prefixed in the file engine; compare suffixes
            # and scores.  Document supersets (URI tokens) can only make
            # places *more* qualified, never less, so the direct results
            # must appear with at-most-equal scores.
            direct_roots = [p.root_label for p in direct_result]
            if direct_roots:
                assert len(file_result) >= len(direct_result)
                assert file_result[0].score <= direct_result[0].score + 1e-9

    def test_disk_inverted_index_in_query_path(self, file_engine, tmp_path):
        """The disk-resident inverted index can drive the algorithms."""
        from repro.core.bsp import bsp_search
        from repro.text.inverted import DiskInvertedIndex

        subgraph, engine = file_engine
        path = tmp_path / "inverted.bin"
        engine.inverted_index.save(path)
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=2, seed=9)
        )
        query = generator.original()
        with DiskInvertedIndex(path) as disk:
            disk_result = bsp_search(engine.graph, engine.rtree, disk, query)
            memory_result = bsp_search(
                engine.graph, engine.rtree, engine.inverted_index, query
            )
            assert [p.root for p in disk_result] == [p.root for p in memory_result]
            assert disk.reads >= len(query.keywords)
