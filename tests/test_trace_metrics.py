"""Observability layer: QueryTrace, MetricsRegistry and their engine wiring.

Two properties matter: tracing must be *strictly additive* (identical
top-k with the recorder on or off), and the Prometheus exposition must
be well-formed text a scraper can ingest.
"""

from __future__ import annotations

import math
import random

from repro.core.engine import KSPEngine
from repro.core.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.core.trace import (
    PHASE_ALPHA,
    PHASE_REACH,
    PHASE_RTREE,
    PHASE_STREAM,
    PHASE_TQSP,
    QueryTrace,
)

from tests.test_batch_cache_agreement import (
    METHODS,
    build_graph,
    fingerprint,
    random_queries,
)

import pytest
from repro.core.config import EngineConfig


class TestQueryTrace:
    def test_add_accumulates(self):
        trace = QueryTrace()
        trace.add("x", 0.5)
        trace.add("x", 0.25, count=3)
        assert trace.seconds("x") == 0.75
        assert trace.count("x") == 4
        assert trace.phases() == ["x"]
        assert trace.total_seconds() == 0.75
        assert bool(trace)

    def test_empty_trace(self):
        trace = QueryTrace()
        assert not trace
        assert trace.seconds("missing") == 0.0
        assert trace.count("missing") == 0
        assert trace.report() == "trace: no phases recorded"

    def test_span_context_manager(self):
        trace = QueryTrace()
        with trace.span("work"):
            pass
        assert trace.count("work") == 1
        assert trace.seconds("work") >= 0.0

    def test_as_dict(self):
        trace = QueryTrace()
        trace.add("a", 1.0, count=2)
        assert trace.as_dict() == {"a": {"seconds": 1.0, "count": 2}}

    def test_report_sorted_with_untraced_remainder(self):
        trace = QueryTrace()
        trace.add("small", 0.1)
        trace.add("large", 0.6)
        report = trace.report(runtime_seconds=1.0)
        lines = report.splitlines()
        assert "large" in lines[1] and "60.0%" in lines[1]
        assert "small" in lines[2]
        assert "(untraced)" in lines[3] and "30.0%" in lines[3]


class TestMetricsPrimitives:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts[0.1] == 1
        assert counts[1.0] == 2
        assert counts[math.inf] == 3
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", "help")
        b = registry.counter("requests_total")
        assert a is b

    def test_labels_separate_instances_same_family(self):
        registry = MetricsRegistry()
        sp = registry.counter("queries_total", labels={"method": "sp"})
        ta = registry.counter("queries_total", labels={"method": "ta"})
        assert sp is not ta
        sp.inc(2)
        ta.inc()
        text = registry.render_text()
        assert 'queries_total{method="sp"} 2' in text
        assert 'queries_total{method="ta"} 1' in text
        # One family header for both children.
        assert text.count("# TYPE queries_total counter") == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_render_text_format(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things done").inc(3)
        registry.gauge("b_current", "things now").set(1.5)
        h = registry.histogram("c_seconds", "latency", buckets=(0.5,))
        h.observe(0.25)
        h.observe(2.0)
        text = registry.render_text()
        assert "# HELP a_total things done\n# TYPE a_total counter\na_total 3" in text
        assert "# TYPE b_current gauge\nb_current 1.5" in text
        assert 'c_seconds_bucket{le="0.5"} 1' in text
        assert 'c_seconds_bucket{le="+Inf"} 2' in text
        assert "c_seconds_sum 2.25" in text
        assert "c_seconds_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""


@pytest.fixture(scope="module")
def engine():
    # Large enough that the R-tree has internal levels, so SP's
    # node-expansion phase is exercised too.
    return KSPEngine(build_graph(57, vertex_count=300), EngineConfig(alpha=2))


class TestTraceAgreement:
    def test_traced_and_untraced_topk_identical(self, engine):
        """Tracing must never change an answer (the recorder only times)."""
        rng = random.Random(58)
        for query in random_queries(rng, 15):
            for method in METHODS:
                plain = engine.query(query, method=method)
                traced = engine.query(query, method=method, trace=True)
                assert fingerprint(traced) == fingerprint(plain), (
                    method,
                    query.keywords,
                )
                assert plain.trace is None
                assert traced.trace is not None

    def test_expected_phases_recorded_per_algorithm(self, engine):
        rng = random.Random(59)
        expected = {
            "bsp": {PHASE_RTREE, PHASE_TQSP},
            "spp": {PHASE_RTREE, PHASE_REACH},
            "sp": {PHASE_RTREE, PHASE_ALPHA},
            "ta": {PHASE_STREAM},
        }
        seen = {method: set() for method in METHODS}
        for query in random_queries(rng, 10):
            for method in METHODS:
                result = engine.query(query, method=method, trace=True)
                seen[method].update(result.trace.phases())
        for method, phases in expected.items():
            assert phases <= seen[method], (method, seen[method])

    def test_trace_rendered_by_explain(self, engine):
        query = random_queries(random.Random(60), 1)[0]
        result = engine.query(query, method="sp", trace=True)
        assert "trace: per-phase breakdown" in result.explain()

    def test_engine_metrics_after_queries(self, engine):
        for query in random_queries(random.Random(61), 5):
            engine.query(query, method="sp")
        text = engine.metrics_text()
        assert "# TYPE ksp_query_latency_seconds histogram" in text
        assert 'ksp_queries_total{method="sp"}' in text
        assert "ksp_tqsp_cache_entries" in text
        assert "ksp_tqsp_cache_hit_ratio" in text
        assert "ksp_query_timeouts_total" in text
