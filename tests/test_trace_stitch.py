"""Distributed trace stitching: deterministic span ids, the Perfetto
process mapping (router pid 1, shard ``j`` pid ``2 + j``, OS pids as
metadata), and the end-to-end correlation contract — one query traced
through a sharded fleet yields ONE merged timeline whose router, shard
and worker spans all share the caller's trace id.
"""

import json
import pathlib
import urllib.request

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.core.trace import QueryTrace
from repro.obs.traceexport import (
    make_traceparent,
    parse_traceparent,
    span_id_for,
    stitch_trace_events,
    trace_events,
)
from repro.shard import ShardRouter, build_shards

from tests.test_serve import request

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"


# ----------------------------------------------------------------------
# Outbound header construction


class TestSpanIds:
    def test_span_id_is_deterministic_16_hex(self):
        first = span_id_for("q-1#shard-0")
        assert first == span_id_for("q-1#shard-0")
        assert len(first) == 16
        assert first != span_id_for("q-1#shard-1")
        assert set(first) <= set("0123456789abcdef")
        assert set(first) != {"0"}

    def test_traceparent_roundtrips_through_the_parser(self):
        header = make_traceparent(TRACE_ID, span_id_for("q-1#shard-2"))
        assert header.startswith("00-") and header.endswith("-01")
        assert parse_traceparent(header) == TRACE_ID


# ----------------------------------------------------------------------
# The stitch (pure document surgery; wire-rebuilt traces make it
# byte-deterministic, which is what the golden file pins)

ROOT_PHASES = {
    "scatter": {"seconds": 0.002, "count": 1},
    "merge": {"seconds": 0.001, "count": 3},
}
SHARD_PHASES = {
    "rtree-ascent": {"seconds": 0.001, "count": 2},
    "tqsp-bfs": {"seconds": 0.0005, "count": 1},
}


def make_stitched():
    root = trace_events(
        QueryTrace.from_dict(ROOT_PHASES),
        request_id="golden-stitch-1",
        trace_id=TRACE_ID,
        runtime_seconds=0.004,
    )
    # Children deliberately out of label order: the stitch must order
    # by label so shard-0 always gets pid 2.
    children = []
    for index, offset, os_pid in ((1, 0.0003, 40002), (0, 0.0002, 40001)):
        sub_id = "golden-stitch-1#shard-%d" % index
        children.append(
            {
                "label": "shard-%d" % index,
                "document": trace_events(
                    QueryTrace.from_dict(SHARD_PHASES),
                    request_id=sub_id,
                    trace_id=TRACE_ID,
                    runtime_seconds=0.0015,
                    os_pid=os_pid,
                ),
                "offset_seconds": offset,
                "request_id": sub_id,
                "os_pid": os_pid,
            }
        )
    return stitch_trace_events(root, children)


class TestStitch:
    def test_logical_pids_are_label_ordered(self):
        stitched = make_stitched()
        processes = stitched["otherData"]["processes"]
        assert [(p["pid"], p["label"]) for p in processes] == [
            (1, "router"),
            (2, "shard-0"),
            (3, "shard-1"),
        ]

    def test_os_pids_ride_as_metadata_only(self):
        stitched = make_stitched()
        processes = stitched["otherData"]["processes"]
        assert [p["os_pid"] for p in processes] == [None, 40001, 40002]
        event_pids = {e["pid"] for e in stitched["traceEvents"]}
        assert event_pids == {1, 2, 3}  # never the OS pids

    def test_process_rows_are_renamed_to_their_identity(self):
        stitched = make_stitched()
        names = {
            e["pid"]: e["args"]["name"]
            for e in stitched["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names == {1: "router", 2: "shard-0", 3: "shard-1"}

    def test_child_spans_are_shifted_by_dispatch_offset(self):
        stitched = make_stitched()
        shard0_spans = [
            e
            for e in stitched["traceEvents"]
            if e["pid"] == 2 and e.get("cat") == "phase"
        ]
        # shard-0 dispatched 200us in: its first span starts there.
        assert min(span["ts"] for span in shard0_spans) == 200
        meta = [
            e for e in stitched["traceEvents"] if e.get("ph") == "M"
        ]
        assert all("ts" not in e or e["pid"] == 1 for e in meta)

    def test_every_span_carries_the_one_trace_id(self):
        stitched = make_stitched()
        assert stitched["otherData"]["trace_id"] == TRACE_ID
        for event in stitched["traceEvents"]:
            if event.get("cat") in ("phase", "query"):
                assert event["args"]["trace_id"] == TRACE_ID

    def test_sub_request_ids_follow_the_shard_convention(self):
        processes = make_stitched()["otherData"]["processes"]
        assert processes[0]["request_id"] == "golden-stitch-1"
        assert processes[1]["request_id"] == "golden-stitch-1#shard-0"
        assert processes[2]["request_id"] == "golden-stitch-1#shard-1"

    def test_golden_stitched_trace(self):
        rendered = (
            json.dumps(make_stitched(), indent=2, sort_keys=True) + "\n"
        )
        golden = (GOLDEN_DIR / "trace_stitch_example.json").read_text()
        assert rendered == golden

    def test_golden_file_is_canonical_json(self):
        raw = (GOLDEN_DIR / "trace_stitch_example.json").read_text()
        assert raw == json.dumps(json.loads(raw), indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# End-to-end correlation through a sharded fleet


def _place_terms(graph, limit=20):
    terms = set()
    for vertex, _ in graph.places():
        terms.update(graph.document(vertex))
        if len(terms) >= limit:
            break
    return sorted(terms)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory, tiny_yago_graph):
    """Three single-engine shard servers behind an HTTP router server."""
    from repro.serve.server import KSPServer, ServeConfig

    config = EngineConfig(alpha=3)
    directory = tmp_path_factory.mktemp("stitch-shards")
    manifest = build_shards(tiny_yago_graph, directory, 3, config=config)
    servers = []
    try:
        for entry in manifest["entries"]:
            engine = KSPEngine.from_snapshot(directory / entry["snapshot"], config)
            servers.append(
                KSPServer(engine=engine, config=ServeConfig(port=0)).start()
            )
        router = ShardRouter(
            directory, config, shard_urls=[server.url for server in servers]
        )
        front = KSPServer(engine=router, config=ServeConfig(port=0)).start()
        try:
            yield front, servers, tiny_yago_graph
        finally:
            front.stop()
    finally:
        for server in servers:
            server.stop()


class TestEndToEndCorrelation:
    def test_one_trace_id_across_router_shards_and_export(self, fleet):
        front, shard_servers, graph = fleet
        terms = _place_terms(graph)
        body = {
            "location": [2.0, 48.0],
            "keywords": terms[:2],
            "k": 3,
            "method": "sp",
            "trace": True,
        }
        status, wire, _ = request(
            front.port,
            "POST",
            "/v1/query",
            body=body,
            headers={
                "X-Request-Id": "stitch-e2e-1",
                "traceparent": make_traceparent(TRACE_ID, "00f067aa0ba902b7"),
            },
        )
        assert status == 200

        # 1. The router wire response carries the caller's trace id and
        #    a stitched trace_events document.
        assert wire["request_id"] == "stitch-e2e-1"
        assert wire["trace_id"] == TRACE_ID
        document = wire["trace_events"]
        assert document["otherData"]["trace_id"] == TRACE_ID

        # 2. The merged timeline contains router AND shard processes,
        #    each attributed to an OS pid.
        processes = document["otherData"]["processes"]
        labels = [p["label"] for p in processes]
        assert labels[0] == "router"
        executed = [
            s for s in wire["stats"]["shards"] if not s["pruned"]
        ]
        assert len(labels) == 1 + len(executed)
        assert all(p["os_pid"] is not None for p in processes[1:])
        pids_in_events = {e["pid"] for e in document["traceEvents"]}
        assert pids_in_events == {p["pid"] for p in processes}
        assert len(pids_in_events) >= 2

        # 3. Per-shard request ids follow the '#shard-j' convention and
        #    appear in the router's own stats.
        for process in processes[1:]:
            assert process["request_id"].startswith("stitch-e2e-1#shard-")
        stats_ids = {
            s["request_id"]
            for s in wire["stats"]["shards"]
            if s.get("request_id")
        }
        assert {p["request_id"] for p in processes[1:]} <= stats_ids

        # 4. Every shard server's flight recorder saw the same trace id
        #    under the sub-request id.
        correlated = 0
        for server in shard_servers:
            with urllib.request.urlopen(
                server.url + "/v1/debug/queries", timeout=10
            ) as response:
                debug = json.loads(response.read().decode("utf-8"))
            for entry in debug["queries"]:
                if str(entry.get("request_id", "")).startswith(
                    "stitch-e2e-1#shard-"
                ):
                    assert entry["trace_id"] == TRACE_ID
                    assert entry["pid"] is not None
                    correlated += 1
        assert correlated == len(executed)

    def test_untraced_queries_carry_no_trace_document(self, fleet):
        front, _, graph = fleet
        terms = _place_terms(graph)
        status, wire, _ = request(
            front.port,
            "POST",
            "/v1/query",
            body={
                "location": [2.0, 48.0],
                "keywords": terms[:2],
                "k": 2,
                "method": "sp",
            },
        )
        assert status == 200
        assert "trace_events" not in wire
