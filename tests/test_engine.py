"""KSPEngine facade: construction paths, option validation, reports."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.core.query import KSPQuery
from repro.datagen.paper_example import (
    EXAMPLE_KEYWORDS,
    EXAMPLE_NTRIPLES,
    Q1,
    build_example_graph,
)
from repro.rdf import ntriples
from repro.spatial.geometry import Point


class TestConstruction:
    def test_from_triples(self):
        engine = KSPEngine.from_triples(ntriples.parse(EXAMPLE_NTRIPLES))
        result = engine.query(Q1, EXAMPLE_KEYWORDS, k=1)
        assert result[0].root_label.endswith("Montmajour_Abbey")
        assert result[0].looseness == 6.0

    def test_from_ntriples_file(self, tmp_path):
        path = tmp_path / "example.nt"
        path.write_text(EXAMPLE_NTRIPLES, encoding="utf-8")
        engine = KSPEngine.from_ntriples_file(path)
        result = engine.query(Q1, EXAMPLE_KEYWORDS, k=1)
        assert result[0].looseness == 6.0

    def test_build_times_recorded(self, example_engine):
        for key in ("inverted_index", "rtree", "reachability", "alpha_index"):
            assert key in example_engine.build_seconds
            assert example_engine.build_seconds[key] >= 0

    def test_optional_indexes_skipped(self):
        engine = KSPEngine(
            build_example_graph(),
            EngineConfig(build_reachability=False, build_alpha=False),
        )
        assert engine.reachability is None
        assert engine.alpha_index is None
        # BSP and TA still work; SPP and SP refuse.
        assert len(engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="bsp")) == 1
        assert len(engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="ta")) == 1
        with pytest.raises(RuntimeError):
            engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="spp")
        with pytest.raises(RuntimeError):
            engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="sp")

    def test_grail_backend(self):
        engine = KSPEngine(
            build_example_graph(),
            EngineConfig(reach_method="grail", build_alpha=False),
        )
        result = engine.query(Q1, EXAMPLE_KEYWORDS, k=2, method="spp")
        assert [p.root_label for p in result] == ["p1", "p2"]


class TestQueryInterface:
    def test_location_as_tuple(self, example_engine):
        result = example_engine.query((43.51, 4.75), EXAMPLE_KEYWORDS, k=1)
        assert result[0].root_label == "p1"

    def test_keywords_normalized(self, example_engine):
        # Mixed case and punctuation are tokenized like the documents were.
        result = example_engine.query(Q1, ["Ancient", "ROMAN!"], k=1)
        assert result.query.keywords == ("ancient", "roman")
        assert len(result) == 1

    def test_unknown_method_rejected(self, example_engine):
        with pytest.raises(ValueError):
            example_engine.query(Q1, EXAMPLE_KEYWORDS, method="magic")

    def test_invalid_query_parameters(self):
        with pytest.raises(ValueError):
            KSPQuery(location=Point(0, 0), keywords=("a",), k=0)
        with pytest.raises(ValueError):
            KSPQuery(location=Point(0, 0), keywords=(), k=1)
        with pytest.raises(ValueError):
            KSPQuery(location=Point(0, 0), keywords=("a", "a"), k=1)

    def test_query_accepts_query_object(self, example_engine):
        query = KSPQuery(location=Q1, keywords=EXAMPLE_KEYWORDS, k=2)
        result = example_engine.query(query, method="sp")
        assert len(result) == 2

    def test_query_object_coerces_tuple_location(self, example_engine):
        # Hand-built queries skip query()'s normalization, so the
        # dataclass itself must accept an (x, y) pair.
        query = KSPQuery(location=(Q1.x, Q1.y), keywords=EXAMPLE_KEYWORDS, k=2)
        reference = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=2)
        assert example_engine.query(query).scores() == reference.scores()

    def test_run_alias_removed(self, example_engine):
        # run() completed its deprecation cycle; query() is the one entry.
        assert not hasattr(example_engine, "run")


class TestReports:
    def test_storage_report(self, example_engine):
        report = example_engine.storage_report()
        for key in ("rtree", "rdf_graph", "inverted_index", "reachability",
                    "alpha_index"):
            assert report[key] > 0

    def test_dataset_report(self, example_engine):
        report = example_engine.dataset_report()
        assert report["vertices"] == 10
        assert report["edges"] == 8
        assert report["places"] == 2
        assert report["vocabulary"] > 0
        assert report["avg_posting_length"] > 0


class TestResultContainer:
    def test_iteration_and_indexing(self, example_engine):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=2)
        assert len(list(result)) == 2
        assert result[0].root == result.roots()[0]
        assert result.scores() == sorted(result.scores())


class TestGzipLoading:
    def test_from_file_detects_nt_gz(self, tmp_path):
        import gzip

        path = tmp_path / "example.nt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write(EXAMPLE_NTRIPLES)
        engine = KSPEngine.from_file(path)
        result = engine.query(Q1, EXAMPLE_KEYWORDS, k=1)
        assert result[0].looseness == 6.0

    def test_from_file_detects_ttl_gz(self, tmp_path):
        import gzip

        # @prefix only parses on the Turtle path, so this proves the
        # suffix check looks through the trailing .gz.
        text = (
            "@prefix ex: <http://ex.org/> .\n"
            "@prefix geo: <http://www.opengis.net/ont/geosparql#> .\n"
            "ex:a ex:p ex:b .\n"
            'ex:a geo:hasGeometry "POINT(1.0 2.0)" .\n'
            'ex:b ex:description "history" .\n'
        )
        path = tmp_path / "kb.ttl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write(text)
        engine = KSPEngine.from_file(path)
        assert engine.graph.place_count() == 1
        result = engine.query((1.0, 2.0), ["history"], k=1)
        assert len(result) == 1
