"""Hypothesis-driven agreement on arbitrary random spatial RDF graphs.

The workload-based agreement tests use generator-shaped corpora; this one
feeds the algorithms completely unstructured graphs — disconnected parts,
empty documents, coincident locations, dangling places — and asserts all
four algorithms still match the exhaustive reference."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import KSPEngine
from repro.core.exhaustive import exhaustive_search
from repro.core.query import KSPQuery
from repro.rdf.graph import RDFGraph
from repro.spatial.geometry import Point
from repro.core.config import EngineConfig

TERMS = ["aa", "bb", "cc", "dd", "ee"]


@st.composite
def random_graphs(draw):
    vertex_count = draw(st.integers(min_value=1, max_value=18))
    graph = RDFGraph()
    location_values = st.floats(
        min_value=-5, max_value=5, allow_nan=False, allow_infinity=False
    )
    for index in range(vertex_count):
        document = draw(st.frozensets(st.sampled_from(TERMS), max_size=3))
        is_place = draw(st.booleans())
        location = None
        if is_place:
            location = Point(draw(location_values), draw(location_values))
        graph.add_vertex("v%d" % index, document=document, location=location)
    edge_count = draw(st.integers(min_value=0, max_value=3 * vertex_count))
    for _ in range(edge_count):
        a = draw(st.integers(0, vertex_count - 1))
        b = draw(st.integers(0, vertex_count - 1))
        if a != b:
            graph.add_edge(a, b)
    return graph


queries = st.tuples(
    st.lists(st.sampled_from(TERMS), min_size=1, max_size=3, unique=True),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=-5, max_value=5, allow_nan=False),
    st.floats(min_value=-5, max_value=5, allow_nan=False),
)


class TestRandomGraphAgreement:
    @given(random_graphs(), queries)
    @settings(max_examples=60, deadline=None)
    def test_all_methods_match_exhaustive(self, graph, query_spec):
        keywords, k, x, y = query_spec
        query = KSPQuery(location=Point(x, y), keywords=tuple(keywords), k=k)
        engine = KSPEngine(graph, EngineConfig(alpha=2))
        reference = exhaustive_search(graph, engine.inverted_index, query)
        expected = [(p.root, round(p.score, 9)) for p in reference]
        for method in ("bsp", "spp", "sp", "ta"):
            got = [
                (p.root, round(p.score, 9))
                for p in engine.query(query, method=method)
            ]
            assert got == expected, method

    @given(random_graphs(), queries)
    @settings(max_examples=25, deadline=None)
    def test_undirected_mode_matches_exhaustive(self, graph, query_spec):
        keywords, k, x, y = query_spec
        query = KSPQuery(location=Point(x, y), keywords=tuple(keywords), k=k)
        engine = KSPEngine(graph, EngineConfig(alpha=2, undirected=True))
        reference = exhaustive_search(
            graph, engine.inverted_index, query, undirected=True
        )
        expected = [(p.root, round(p.score, 9)) for p in reference]
        for method in ("spp", "sp"):
            got = [
                (p.root, round(p.score, 9))
                for p in engine.query(query, method=method)
            ]
            assert got == expected, method

    @given(random_graphs(), queries)
    @settings(max_examples=25, deadline=None)
    def test_cursor_prefix_matches_exhaustive(self, graph, query_spec):
        keywords, k, x, y = query_spec
        engine = KSPEngine(graph, EngineConfig(alpha=2))
        query = KSPQuery(location=Point(x, y), keywords=tuple(keywords), k=10)
        reference = exhaustive_search(graph, engine.inverted_index, query)
        cursor = engine.cursor(Point(x, y), list(keywords))
        streamed = cursor.take(10)
        assert [round(p.score, 9) for p in streamed] == [
            round(p.score, 9) for p in reference
        ]
