"""R*-style split strategy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect
from repro.spatial.rtree import RTree

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=100)


class TestRStarSplit:
    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            RTree(split="fancy")

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, pairs):
        tree = RTree(max_entries=4, split="rstar")
        for index, (x, y) in enumerate(pairs):
            tree.insert(index, Point(x, y))
        tree.validate()

    @given(point_lists, st.tuples(coords, coords))
    @settings(max_examples=30, deadline=None)
    def test_nearest_matches_brute_force(self, pairs, query_xy):
        tree = RTree(max_entries=4, split="rstar")
        items = [(i, Point(x, y)) for i, (x, y) in enumerate(pairs)]
        for key, point in items:
            tree.insert(key, point)
        query = Point(*query_xy)
        expected = sorted(point.distance_to(query) for _, point in items)
        got = [distance for distance, _ in tree.nearest(query)]
        assert len(got) == len(expected)
        for got_distance, expected_distance in zip(got, expected):
            assert got_distance == pytest.approx(expected_distance)

    def test_same_contents_as_quadratic(self):
        rng = random.Random(11)
        points = [
            (i, Point(rng.uniform(0, 100), rng.uniform(0, 100)))
            for i in range(400)
        ]
        quadratic = RTree(max_entries=6, split="quadratic")
        rstar = RTree(max_entries=6, split="rstar")
        for key, point in points:
            quadratic.insert(key, point)
            rstar.insert(key, point)
        assert sorted(e.key for e in quadratic.iter_entries()) == sorted(
            e.key for e in rstar.iter_entries()
        )
        quadratic.validate()
        rstar.validate()

    def test_rstar_reduces_leaf_overlap_on_clustered_data(self):
        """R* split optimizes overlap; on clustered points its leaves
        should overlap no more than (and typically less than) quadratic's."""
        rng = random.Random(13)
        clusters = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(10)]
        points = []
        for index in range(600):
            cx, cy = clusters[index % len(clusters)]
            points.append(
                (index, Point(rng.gauss(cx, 2.0), rng.gauss(cy, 2.0)))
            )

        def total_leaf_overlap(tree):
            leaves = [n for n in tree.iter_nodes() if n.is_leaf and n.rect]
            overlap = 0.0
            for i in range(len(leaves)):
                for j in range(i + 1, len(leaves)):
                    a, b = leaves[i].rect, leaves[j].rect
                    if a.intersects(b):
                        overlap += Rect(
                            max(a.min_x, b.min_x),
                            max(a.min_y, b.min_y),
                            min(a.max_x, b.max_x),
                            min(a.max_y, b.max_y),
                        ).area()
            return overlap

        quadratic = RTree(max_entries=8, split="quadratic")
        rstar = RTree(max_entries=8, split="rstar")
        for key, point in points:
            quadratic.insert(key, point)
            rstar.insert(key, point)
        assert total_leaf_overlap(rstar) <= total_leaf_overlap(quadratic) * 1.05
