"""GetSemanticPlace / GetSemanticPlaceP (Algorithms 2 and 3) on the paper's
worked examples."""

import math

import pytest

from repro.core.semantic_place import SearchStatus, SemanticPlaceSearcher
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, build_example_graph
from repro.text.inverted import InvertedIndex, build_query_map


@pytest.fixture(scope="module")
def setup():
    graph = build_example_graph()
    inverted = InvertedIndex.build(graph)
    query_map = build_query_map(inverted, EXAMPLE_KEYWORDS)
    searcher = SemanticPlaceSearcher(graph)
    return graph, query_map, searcher


class TestExample7:
    """Algorithm 2 walkthrough: L(T_p1) = 6 with covers v2, v3, v4."""

    def test_looseness(self, setup):
        graph, query_map, searcher = setup
        p1 = graph.vertex_by_label("p1")
        search = searcher.tightest(EXAMPLE_KEYWORDS, p1, query_map)
        assert search.status is SearchStatus.COMPLETE
        assert search.looseness == 6.0

    def test_keyword_vertices(self, setup):
        graph, query_map, searcher = setup
        p1 = graph.vertex_by_label("p1")
        search = searcher.tightest(EXAMPLE_KEYWORDS, p1, query_map)
        v2 = graph.vertex_by_label("v2")
        v3 = graph.vertex_by_label("v3")
        v4 = graph.vertex_by_label("v4")
        assert search.keyword_vertices == {
            "catholic": v2,
            "roman": v2,
            "ancient": v3,
            "history": v4,
        }

    def test_paths_reconstruct_tree(self, setup):
        graph, query_map, searcher = setup
        p1 = graph.vertex_by_label("p1")
        v1 = graph.vertex_by_label("v1")
        v4 = graph.vertex_by_label("v4")
        search = searcher.tightest(EXAMPLE_KEYWORDS, p1, query_map)
        assert search.path_to(v4, p1) == (p1, v1, v4)


class TestExample4:
    """TQSP rooted at p2 has looseness 4 (covers p2, v7, v8)."""

    def test_looseness(self, setup):
        graph, query_map, searcher = setup
        p2 = graph.vertex_by_label("p2")
        search = searcher.tightest(EXAMPLE_KEYWORDS, p2, query_map)
        assert search.status is SearchStatus.COMPLETE
        assert search.looseness == 4.0

    def test_root_covers_its_own_keywords_at_zero(self, setup):
        graph, query_map, searcher = setup
        p2 = graph.vertex_by_label("p2")
        search = searcher.tightest(EXAMPLE_KEYWORDS, p2, query_map)
        assert search.keyword_vertices["catholic"] == p2
        assert search.keyword_vertices["roman"] == p2
        assert search.path_to(p2, p2) == (p2,)


class TestUnqualified:
    def test_missing_keyword_gives_unqualified(self, setup):
        graph, _, searcher = setup
        inverted = InvertedIndex.build(graph)
        keywords = ("church", "architecture")
        query_map = build_query_map(inverted, keywords)
        p2 = graph.vertex_by_label("p2")
        search = searcher.tightest(keywords, p2, query_map)
        assert search.status is SearchStatus.UNQUALIFIED
        assert search.looseness == math.inf

    def test_nonexistent_keyword(self, setup):
        graph, _, searcher = setup
        p1 = graph.vertex_by_label("p1")
        search = searcher.tightest(("nosuchword",), p1, {})
        assert search.status is SearchStatus.UNQUALIFIED

    def test_empty_keywords_rejected(self, setup):
        graph, query_map, searcher = setup
        with pytest.raises(ValueError):
            searcher.tightest((), 0, query_map)


class TestExample8DynamicBound:
    """With theta = 1.32 from p1 and S(q1, p2) = 1.28, L_w = 1.03: the BFS
    from p2 must abort via Pruning Rule 2."""

    def test_pruned(self, setup):
        graph, query_map, searcher = setup
        p2 = graph.vertex_by_label("p2")
        threshold = 1.32 / 1.28  # ~1.03
        search = searcher.tightest(
            EXAMPLE_KEYWORDS, p2, query_map, looseness_threshold=threshold
        )
        assert search.status is SearchStatus.PRUNED
        assert search.looseness == math.inf

    def test_prune_happens_early(self, setup):
        graph, query_map, searcher = setup
        p2 = graph.vertex_by_label("p2")
        search = searcher.tightest(
            EXAMPLE_KEYWORDS, p2, query_map, looseness_threshold=1.32 / 1.28
        )
        # Example 8: the abort fires when v6 is visited (second BFS pop).
        assert search.vertices_visited == 2

    def test_loose_threshold_does_not_prune(self, setup):
        graph, query_map, searcher = setup
        p2 = graph.vertex_by_label("p2")
        search = searcher.tightest(
            EXAMPLE_KEYWORDS, p2, query_map, looseness_threshold=100.0
        )
        assert search.status is SearchStatus.COMPLETE
        assert search.looseness == 4.0

    def test_threshold_exactly_at_looseness_prunes(self, setup):
        # LB converges to the true looseness, so threshold == L must prune
        # (the rule is LB >= L_w).
        graph, query_map, searcher = setup
        p2 = graph.vertex_by_label("p2")
        search = searcher.tightest(
            EXAMPLE_KEYWORDS, p2, query_map, looseness_threshold=4.0
        )
        assert search.status is SearchStatus.PRUNED


class TestUndirected:
    def test_undirected_reaches_against_edges(self, setup):
        graph, _, _ = setup
        searcher = SemanticPlaceSearcher(graph, undirected=True)
        inverted = InvertedIndex.build(graph)
        keywords = ("abbey",)
        query_map = build_query_map(inverted, keywords)
        # v4 -> p1 only exists against edge direction (p1 -> v1 -> v4).
        v4 = graph.vertex_by_label("v4")
        search = searcher.tightest(keywords, v4, query_map)
        assert search.status is SearchStatus.COMPLETE
        assert search.looseness == 1.0 + 2


class TestCominimalCovers:
    def test_all_minimal_covers_found(self, setup):
        graph, query_map, searcher = setup
        p1 = graph.vertex_by_label("p1")
        covers = searcher.cominimal_covers(EXAMPLE_KEYWORDS, p1, query_map)
        v2 = graph.vertex_by_label("v2")
        v3 = graph.vertex_by_label("v3")
        v4 = graph.vertex_by_label("v4")
        assert covers["catholic"] == [v2]
        assert covers["roman"] == [v2]
        assert covers["ancient"] == [v3]
        assert covers["history"] == [v4]

    def test_ties_enumerated(self):
        # Two vertices cover the keyword at the same minimal distance.
        from repro.rdf.graph import RDFGraph
        from repro.spatial.geometry import Point

        graph = RDFGraph()
        root = graph.add_vertex("root", location=Point(0, 0))
        a = graph.add_vertex("a", document={"kw"})
        b = graph.add_vertex("b", document={"kw"})
        graph.add_edge(root, a)
        graph.add_edge(root, b)
        searcher = SemanticPlaceSearcher(graph)
        inverted = InvertedIndex.build(graph)
        query_map = build_query_map(inverted, ("kw",))
        covers = searcher.cominimal_covers(("kw",), root, query_map)
        assert sorted(covers["kw"]) == sorted([a, b])

    def test_unqualified_returns_none(self, setup):
        graph, _, searcher = setup
        p2 = graph.vertex_by_label("p2")
        inverted = InvertedIndex.build(graph)
        keywords = ("architecture",)
        query_map = build_query_map(inverted, keywords)
        assert searcher.cominimal_covers(keywords, p2, query_map) is None
