"""End-to-end suite for the HTTP query service (live sockets).

Every test talks to a real ``KSPServer`` over ``http.client`` — no
handler mocking — pinning the serving contract: concurrent HTTP answers
are byte-identical to in-process ``engine.query``, overload yields 429
(never a dropped connection), an expired deadline yields 504 carrying a
partial top-k dominated by the untimed answer, the readiness gate holds
until the engine loads, and the metrics endpoint reflects what actually
happened.
"""

import json
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.serve import KSPServer, ServeConfig

from tests.test_batch_cache_agreement import METHODS, build_graph, random_queries


# ----------------------------------------------------------------------
# Plumbing


def request(port, method, path, body=None, headers=None, timeout=30.0):
    """One HTTP exchange -> (status, parsed-or-text body, headers)."""
    connection = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        raw = json.dumps(body).encode("utf-8") if body is not None else None
        base = {"Content-Type": "application/json"} if raw else {}
        base.update(headers or {})
        connection.request(method, path, body=raw, headers=base)
        response = connection.getresponse()
        payload = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            payload = json.loads(payload)
        return response.status, payload, dict(response.headers)
    finally:
        connection.close()


def post_query(port, body, headers=None, path="/v1/query"):
    return request(port, "POST", path, body=body, headers=headers)


def query_body(query, method=None, **extra):
    body = {
        "location": [query.location.x, query.location.y],
        "keywords": list(query.keywords),
        "k": query.k,
    }
    if method is not None:
        body["method"] = method
    body.update(extra)
    return body


class GatedEngine:
    """Engine proxy whose queries block until the test releases them."""

    def __init__(self, inner):
        self._inner = inner
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def query(self, query, options=None):
        self.entered.release()
        assert self.release.wait(timeout=30.0), "test forgot to release the gate"
        return self._inner.query(query, options=options)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.fixture(scope="module")
def engine():
    return KSPEngine(build_graph(1500, vertex_count=80), EngineConfig(alpha=2))


@pytest.fixture(scope="module")
def server(engine):
    with KSPServer(engine, ServeConfig(workers=4, queue_depth=32)) as running:
        yield running


# ----------------------------------------------------------------------
# Agreement: HTTP answers are byte-identical to in-process answers.


class TestAgreement:
    def test_50_concurrent_mixed_queries_byte_identical(self, engine, server):
        workload = random_queries(random.Random(71), 50)
        methods = [METHODS[i % len(METHODS)] for i in range(len(workload))]
        expected = [
            json.dumps(
                engine.query(q, method=m).to_dict()["places"], sort_keys=True
            ).encode("utf-8")
            for q, m in zip(workload, methods)
        ]

        def over_http(pair):
            q, m = pair
            status, body, _ = post_query(server.port, query_body(q, method=m))
            assert status == 200
            return json.dumps(body["places"], sort_keys=True).encode("utf-8")

        with ThreadPoolExecutor(max_workers=16) as pool:
            got = list(pool.map(over_http, zip(workload, methods)))
        assert got == expected

    def test_concurrent_clients_hammering_tqsp_cache(self, engine, server):
        query = random_queries(random.Random(72), 1)[0]
        reference = json.dumps(
            engine.query(query, method="sp").to_dict()["places"], sort_keys=True
        )

        def hammer(_):
            status, body, _ = post_query(server.port, query_body(query, method="sp"))
            assert status == 200
            return json.dumps(body["places"], sort_keys=True)

        with ThreadPoolExecutor(max_workers=12) as pool:
            answers = list(pool.map(hammer, range(36)))
        assert set(answers) == {reference}
        # The repeats were served out of the shared TQSP cache.
        assert "ksp_tqsp_cache_hit_ratio" in engine.metrics_text()

    def test_batch_endpoint_matches_query_endpoint(self, server):
        workload = random_queries(random.Random(73), 4)
        singles = [
            post_query(server.port, query_body(q, method="sp"))[1]["places"]
            for q in workload
        ]
        status, body, _ = request(
            server.port,
            "POST",
            "/v1/batch",
            body={"queries": [query_body(q) for q in workload], "method": "sp"},
        )
        assert status == 200
        assert [slot["places"] for slot in body["results"]] == singles
        assert not body["timed_out"]


# ----------------------------------------------------------------------
# Request ids


class TestRequestIds:
    def test_client_id_echoed_in_header_and_body(self, server):
        query = random_queries(random.Random(74), 1)[0]
        status, body, headers = post_query(
            server.port, query_body(query), headers={"X-Request-Id": "trace-me-7"}
        )
        assert status == 200
        assert headers["X-Request-Id"] == "trace-me-7"
        assert body["request_id"] == "trace-me-7"

    def test_generated_id_when_client_sends_none(self, server):
        query = random_queries(random.Random(75), 1)[0]
        status, body, headers = post_query(server.port, query_body(query))
        assert status == 200
        assert body["request_id"]
        assert headers["X-Request-Id"] == body["request_id"]

    def test_batch_slots_get_derived_ids(self, server):
        workload = random_queries(random.Random(76), 3)
        status, body, _ = request(
            server.port,
            "POST",
            "/v1/batch",
            body={"queries": [query_body(q) for q in workload]},
            headers={"X-Request-Id": "batch-9"},
        )
        assert status == 200
        assert body["request_id"] == "batch-9"
        assert [slot["request_id"] for slot in body["results"]] == [
            "batch-9-0",
            "batch-9-1",
            "batch-9-2",
        ]

    def test_trace_via_query_parameter(self, server):
        query = random_queries(random.Random(77), 1)[0]
        status, body, _ = post_query(
            server.port, query_body(query), path="/v1/query?trace=1"
        )
        assert status == 200
        assert body["trace"]  # per-phase breakdown present
        for phase in body["trace"].values():
            assert set(phase) == {"seconds", "count"}


# ----------------------------------------------------------------------
# Overload: 429 with Retry-After, never a dropped connection.


class TestOverload:
    def test_queue_full_yields_429_never_a_dropped_connection(self, engine):
        gated = GatedEngine(engine)
        config = ServeConfig(workers=1, queue_depth=1)
        with KSPServer(gated, config) as server:
            query = random_queries(random.Random(78), 1)[0]
            outcomes = []
            lock = threading.Lock()

            def fire():
                status, body, headers = post_query(server.port, query_body(query))
                with lock:
                    outcomes.append((status, body, headers))

            # Deterministic saturation: one request holds the single
            # execution slot (blocked inside the gated engine) ...
            holder = threading.Thread(target=fire)
            holder.start()
            assert gated.entered.acquire(timeout=10.0)
            # ... a second one fills the depth-1 admission queue ...
            waiter = threading.Thread(target=fire)
            waiter.start()
            for _ in range(400):
                if server.admission.queued == 1:
                    break
                threading.Event().wait(0.005)
            assert server.admission.queued == 1

            # ... so each further arrival must be refused immediately,
            # with a well-formed 429 — never a dropped connection.
            for _ in range(4):
                status, body, headers = post_query(server.port, query_body(query))
                assert status == 429
                assert int(headers["Retry-After"]) >= 1
                assert body["error"]
                assert body["retry_after_seconds"] >= 1

            gated.release.set()
            holder.join(timeout=30.0)
            waiter.join(timeout=30.0)
            assert [status for status, _, _ in outcomes] == [200, 200]

            status, text, _ = request(server.port, "GET", "/v1/metrics")
            assert status == 200
            assert "ksp_http_rejections_total 4" in text

    def test_deadline_expired_while_queued_yields_504(self, engine):
        gated = GatedEngine(engine)
        config = ServeConfig(workers=1, queue_depth=4)
        with KSPServer(gated, config) as server:
            query = random_queries(random.Random(79), 1)[0]
            blocker = threading.Thread(
                target=post_query,
                args=(server.port, query_body(query)),
            )
            blocker.start()
            assert gated.entered.acquire(timeout=10.0)
            # This one queues behind the blocked slot and expires there.
            status, body, _ = post_query(
                server.port, query_body(query, timeout=0.2)
            )
            gated.release.set()
            blocker.join(timeout=30.0)
            assert status == 504
            assert body["timed_out"] is True
            assert body["places"] == []
            assert body["stats"]["timed_out"] is True


# ----------------------------------------------------------------------
# Deadlines mid-query: 504 with a sound partial top-k.


class TestDeadline:
    def test_expired_deadline_yields_504_with_dominated_partial(
        self, engine, server
    ):
        rng = random.Random(80)
        saw_timeout = False
        for query in random_queries(rng, 8):
            full_scores = engine.query(query, method="bsp").scores()
            for timeout in (1e-9, 1e-5, 1e-3):
                status, body, _ = post_query(
                    server.port, query_body(query, method="bsp", timeout=timeout)
                )
                if status == 200:
                    continue  # finished inside the budget
                saw_timeout = True
                assert status == 504
                assert body["timed_out"] is True
                # The partial list is pointwise dominated by (never better
                # than) the untimed answer at each rank.
                for rank, score in enumerate(body["scores"]):
                    if rank < len(full_scores):
                        assert score >= full_scores[rank] - 1e-9
        assert saw_timeout

    def test_timeout_zero_rejected_as_schema_error(self, server):
        query = random_queries(random.Random(81), 1)[0]
        status, body, _ = post_query(
            server.port, query_body(query, timeout=0)
        )
        assert status == 400
        assert "timeout" in body["error"]


# ----------------------------------------------------------------------
# Readiness gate


class TestReadiness:
    def test_ready_gates_on_engine_load(self, engine):
        hold = threading.Event()

        def loader():
            assert hold.wait(timeout=30.0)
            return engine

        with KSPServer(engine_loader=loader, config=ServeConfig()) as server:
            status, body, _ = request(server.port, "GET", "/v1/ready")
            assert (status, body["status"]) == (503, "loading")
            status, body, _ = request(server.port, "GET", "/v1/healthz")
            assert (status, body["status"]) == (200, "ok")

            query = random_queries(random.Random(82), 1)[0]
            status, body, _ = post_query(server.port, query_body(query))
            assert status == 503

            hold.set()
            for _ in range(200):
                status, body, _ = request(server.port, "GET", "/v1/ready")
                if status == 200:
                    break
                threading.Event().wait(0.05)
            assert status == 200

            status, body, _ = post_query(server.port, query_body(query))
            assert status == 200

    def test_loader_failure_reported_not_fatal(self):
        def loader():
            raise RuntimeError("corpus missing")

        with KSPServer(engine_loader=loader, config=ServeConfig()) as server:
            for _ in range(200):
                status, body, _ = request(server.port, "GET", "/v1/ready")
                if status == 503 and body["status"] == "failed":
                    break
                threading.Event().wait(0.05)
            assert body["status"] == "failed"
            assert "corpus missing" in body["error"]


# ----------------------------------------------------------------------
# Protocol edges and metrics


class TestProtocol:
    def test_unknown_endpoint_404(self, server):
        status, body, _ = request(server.port, "GET", "/v1/nope")
        assert status == 404
        status, body, _ = request(server.port, "POST", "/v2/query", body={})
        assert status == 404

    def test_malformed_json_400(self, server):
        connection = HTTPConnection("127.0.0.1", server.port, timeout=10.0)
        try:
            connection.request(
                "POST",
                "/v1/query",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
        finally:
            connection.close()

    def test_schema_violations_400(self, server):
        for bad in (
            {"keywords": ["a"]},  # no location
            {"location": [0, 0]},  # no keywords
            {"location": [0, 0], "keywords": []},
            {"location": [0], "keywords": ["a"]},
            {"location": [0, 0], "keywords": ["a"], "k": 0},
            {"location": [0, 0], "keywords": ["a"], "method": "magic"},
            {"location": [0, 0], "keywords": ["a"], "ranking": "best"},
        ):
            status, body, _ = post_query(server.port, bad)
            assert status == 400, bad
            assert body["error"]

    def test_metrics_reflect_request_counts(self, engine):
        with KSPServer(engine, ServeConfig(workers=2, queue_depth=4)) as server:
            query = random_queries(random.Random(83), 1)[0]
            for _ in range(3):
                assert post_query(server.port, query_body(query))[0] == 200
            assert post_query(server.port, {"keywords": ["a"]})[0] == 400

            status, text, _ = request(server.port, "GET", "/v1/metrics")
            assert status == 200
            assert (
                'ksp_http_requests_total{code="200",endpoint="/v1/query"} 3' in text
            )
            assert (
                'ksp_http_requests_total{code="400",endpoint="/v1/query"} 1' in text
            )
            assert "ksp_http_queue_wait_seconds_count 3" in text
            # The engine's own families render in the same exposition
            # (the module-scoped engine accumulates across tests, so
            # assert presence rather than an exact count).
            assert "ksp_query_latency_seconds_count" in text
