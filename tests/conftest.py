"""Shared fixtures: the paper's Figure 1 example and small synthetic
corpora with their engines (session-scoped — index construction is the
expensive part)."""

from __future__ import annotations

import pytest

from repro.core.engine import KSPEngine
from repro.datagen.paper_example import build_example_graph
from repro.datagen.profiles import TINY_DBPEDIA, TINY_YAGO
from repro.datagen.synthetic import generate_graph
from repro.core.config import EngineConfig


@pytest.fixture(scope="session")
def example_graph():
    return build_example_graph()


@pytest.fixture(scope="session")
def example_engine(example_graph):
    return KSPEngine(example_graph, EngineConfig(alpha=3))


@pytest.fixture(scope="session")
def tiny_dbpedia_graph():
    return generate_graph(TINY_DBPEDIA)


@pytest.fixture(scope="session")
def tiny_yago_graph():
    return generate_graph(TINY_YAGO)


@pytest.fixture(scope="session")
def tiny_dbpedia_engine(tiny_dbpedia_graph):
    return KSPEngine(tiny_dbpedia_graph, EngineConfig(alpha=3))


@pytest.fixture(scope="session")
def tiny_yago_engine(tiny_yago_graph):
    return KSPEngine(tiny_yago_graph, EngineConfig(alpha=3))
