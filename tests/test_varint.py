"""Varint coding and compressed posting lists."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.inverted import DiskInvertedIndex, InvertedIndex
from repro.text.varint import (
    decode_posting_list,
    decode_varint,
    encode_posting_list,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),
            (2 ** 32 - 1, b"\xff\xff\xff\xff\x0f"),
        ],
    )
    def test_known_encodings(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(encoded) == (value, len(encoded))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            decode_varint(b"\xff" * 11)

    @given(st.integers(min_value=0, max_value=2 ** 62))
    def test_round_trip(self, value):
        encoded = encode_varint(value)
        assert decode_varint(encoded) == (value, len(encoded))

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 30), max_size=20))
    def test_stream_of_varints(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_varint(blob, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(blob)


posting_lists = st.lists(
    st.integers(min_value=0, max_value=10 ** 7), max_size=60, unique=True
).map(sorted)


class TestPostingCompression:
    @given(posting_lists)
    def test_round_trip(self, posting):
        blob = encode_posting_list(posting)
        assert decode_posting_list(blob, len(posting)) == posting

    def test_dense_lists_compress_to_one_byte_per_entry(self):
        posting = list(range(1000))
        blob = encode_posting_list(posting)
        assert len(blob) == 1000  # all gaps are zero after the first

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            encode_posting_list([3, 3])
        with pytest.raises(ValueError):
            encode_posting_list([5, 2])

    def test_trailing_bytes_rejected(self):
        blob = encode_posting_list([1, 2]) + b"\x00"
        with pytest.raises(ValueError):
            decode_posting_list(blob, 2)


class TestCompressedDiskIndex:
    def _index(self):
        index = InvertedIndex()
        for vertex in range(200):
            terms = {"common"}
            if vertex % 3 == 0:
                terms.add("third")
            if vertex % 97 == 0:
                terms.add("rare")
            index.add_document(vertex, terms)
        index.finalize()
        return index

    def test_round_trip_compressed(self, tmp_path):
        index = self._index()
        path = tmp_path / "compressed.bin"
        index.save(path, compress=True)
        with DiskInvertedIndex(path) as disk:
            for term in index.vocabulary():
                assert list(disk.posting(term)) == list(index.posting(term))
            assert disk.document_frequency("third") == index.document_frequency(
                "third"
            )

    def test_compression_shrinks_file(self, tmp_path):
        index = self._index()
        raw_path = tmp_path / "raw.bin"
        compressed_path = tmp_path / "compressed.bin"
        index.save(raw_path)
        index.save(compressed_path, compress=True)
        assert compressed_path.stat().st_size < raw_path.stat().st_size

    def test_both_formats_coexist(self, tmp_path):
        index = self._index()
        raw_path = tmp_path / "raw.bin"
        compressed_path = tmp_path / "compressed.bin"
        index.save(raw_path)
        index.save(compressed_path, compress=True)
        with DiskInvertedIndex(raw_path) as raw, DiskInvertedIndex(
            compressed_path
        ) as compressed:
            assert list(raw.posting("common")) == list(compressed.posting("common"))
