"""The shared traversal mixin across both graph stores."""

import pytest

from repro.datagen.sampling import induced_subgraph
from repro.rdf.graph import RDFGraph
from repro.storage.diskgraph import DiskRDFGraph, write_disk_graph


def diamond():
    graph = RDFGraph()
    a, b, c, d = (graph.add_vertex(x) for x in "abcd")
    graph.add_edge(a, b)
    graph.add_edge(a, c)
    graph.add_edge(b, d)
    graph.add_edge(c, d)
    return graph, (a, b, c, d)


class TestMixinOnDiskGraph:
    @pytest.fixture()
    def disk(self, tmp_path):
        graph, ids = diamond()
        path = tmp_path / "g.rgrf"
        write_disk_graph(graph, path)
        with DiskRDFGraph(path) as disk_graph:
            yield disk_graph, ids

    def test_bfs_out_of_range(self, disk):
        disk_graph, _ = disk
        with pytest.raises(IndexError):
            list(disk_graph.bfs(99))

    def test_shortest_path(self, disk):
        disk_graph, (a, b, c, d) = disk
        assert disk_graph.shortest_path_length(a, d) == 2
        assert disk_graph.shortest_path_length(d, a) is None
        assert disk_graph.shortest_path_length(d, a, undirected=True) == 2

    def test_weak_components(self, disk):
        disk_graph, _ = disk
        components = disk_graph.weakly_connected_components()
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2, 3]


class TestMixinConsistency:
    def test_wcc_identical_across_stores(self, tiny_yago_graph, tmp_path):
        subgraph = induced_subgraph(tiny_yago_graph, list(range(250)))
        path = tmp_path / "g.rgrf"
        write_disk_graph(subgraph, path)
        with DiskRDFGraph(path) as disk_graph:
            memory_components = [
                sorted(c) for c in subgraph.weakly_connected_components()
            ]
            disk_components = [
                sorted(c) for c in disk_graph.weakly_connected_components()
            ]
            assert sorted(map(tuple, memory_components)) == sorted(
                map(tuple, disk_components)
            )
