"""Admission FIFO drain: a waiter that abandons a mid-queue ticket
(deadline expiry during a /v1/batch overflow storm) must not wedge the
queue behind a ticket nobody holds.

The first class reproduces the orphaned-ticket bug deterministically at
the controller level; the second hammers ``/v1/batch`` past capacity
over real sockets and asserts the queue drains back to empty and keeps
serving."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.deadline import Deadline
from repro.core.stats import QueryTimeout
from repro.serve.admission import AdmissionController
from repro.serve.server import KSPServer, ServeConfig


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestOrphanedTicket:
    def test_mid_queue_timeout_does_not_wedge_the_fifo(self):
        """A (active), B (head of queue), C (mid-queue, times out),
        D (queued behind C's hole).  While the queue stays non-empty the
        fast path never resets the serving ticket, so before the fix the
        torch stops at C's orphaned ticket and D waits forever on a free
        slot."""
        controller = AdmissionController(max_concurrency=1, max_queue_depth=4)
        controller.acquire()  # A occupies the only slot

        b_admitted = threading.Event()

        def _b():
            controller.acquire()  # blocks; head of the queue
            b_admitted.set()

        b_thread = threading.Thread(target=_b, daemon=True)
        b_thread.start()
        assert _wait_until(lambda: controller.queued == 1)

        # C queues behind B with a short deadline and gives up mid-queue.
        with pytest.raises(QueryTimeout):
            controller.acquire(Deadline.after(0.05))
        assert controller.queued == 1  # only B remains

        # D arrives while B is still queued, landing behind C's hole.
        d_outcome = []

        def _d():
            try:
                waited = controller.acquire(Deadline.after(5.0))
            except QueryTimeout:
                d_outcome.append("wedged")
            else:
                controller.release()
                d_outcome.append(waited)

        d_thread = threading.Thread(target=_d, daemon=True)
        d_thread.start()
        assert _wait_until(lambda: controller.queued == 2)

        controller.release()  # A leaves; B's ticket is now serving
        assert b_admitted.wait(timeout=5.0)
        controller.release()  # B leaves; the torch must skip C's ticket

        # The regression: before the fix D times out here despite a free
        # slot, because the serving ticket points at C's orphan.
        d_thread.join(timeout=10.0)
        assert d_outcome and d_outcome[0] != "wedged", d_outcome
        assert d_outcome[0] < 2.0  # admitted promptly, not at deadline
        assert controller.active == 0
        assert controller.queued == 0

    def test_many_interleaved_timeouts_drain_clean(self):
        """A storm of expiring waiters in arbitrary ticket positions
        leaves the controller serving, with no residue."""
        controller = AdmissionController(max_concurrency=1, max_queue_depth=8)
        controller.acquire()  # hold the slot for the whole storm
        outcomes = []
        lock = threading.Lock()

        def _waiter(budget):
            try:
                controller.acquire(Deadline.after(budget))
            except QueryTimeout:
                with lock:
                    outcomes.append("timeout")
            else:
                controller.release()
                with lock:
                    outcomes.append("admitted")

        threads = [
            threading.Thread(target=_waiter, args=(0.02 + 0.01 * i,), daemon=True)
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert outcomes.count("timeout") == 8  # slot never freed for them
        controller.release()
        assert controller.active == 0
        assert controller.queued == 0
        # And the controller still admits instantly.
        assert controller.acquire(Deadline.after(1.0)) < 0.5
        controller.release()


# ---------------------------------------------------------------------------
# /v1/batch hammering over live sockets


class _SlowEngine:
    """Delegates to a real engine with a fixed per-query delay, so a
    small fleet saturates and admission actually queues."""

    def __init__(self, engine, delay):
        self._engine = engine
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def query(self, *args, **kwargs):
        time.sleep(self._delay)
        return self._engine.query(*args, **kwargs)


def _post(url, path, body, timeout=30.0):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


class TestBatchOverflowDrain:
    def test_batch_hammer_past_capacity_drains_to_empty(self, example_engine):
        engine = _SlowEngine(example_engine, delay=0.15)
        config = ServeConfig(workers=1, queue_depth=2, default_timeout=5.0)
        server = KSPServer(engine=engine, config=config).start()
        try:
            body = {
                "queries": [
                    {"location": [2.0, 2.0], "keywords": ["ancient", "history"], "k": 2},
                    {"location": [2.0, 2.0], "keywords": ["roman"], "k": 2},
                ],
                "timeout": 0.25,  # expires while queued or mid-batch
            }
            statuses = []
            lock = threading.Lock()

            def _hammer():
                status, _ = _post(server.url, "/v1/batch", body)
                with lock:
                    statuses.append(status)

            threads = [
                threading.Thread(target=_hammer, daemon=True) for _ in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)

            assert len(statuses) == 10
            assert set(statuses) <= {200, 429, 504}
            assert 429 in statuses or 504 in statuses  # we truly overflowed

            # The queue must drain to empty — no orphaned tickets.
            admission = server.admission
            assert _wait_until(
                lambda: admission.active == 0 and admission.queued == 0
            ), (admission.active, admission.queued)

            # And the server still answers: a fresh request is admitted
            # immediately instead of 504ing behind a wedged FIFO.
            status, payload = _post(
                server.url,
                "/v1/query",
                {
                    "location": [2.0, 2.0],
                    "keywords": ["ancient", "history"],
                    "k": 2,
                    "timeout": 5.0,
                },
            )
            assert status == 200, payload
            assert payload["timed_out"] is False
        finally:
            server.stop()
