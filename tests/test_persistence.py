"""Engine and index persistence: save once, reload, answer identically."""

import json

import pytest

from repro.core.engine import KSPEngine
from repro.datagen import QueryGenerator, WorkloadConfig
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.datagen.sampling import induced_subgraph
from repro.core.config import EngineConfig
from repro.storage.serialize import (
    load_alpha_index,
    load_reachability,
    save_alpha_index,
    save_reachability,
)


@pytest.fixture(scope="module")
def saved_engine(tiny_yago_graph, tmp_path_factory):
    subgraph = induced_subgraph(tiny_yago_graph, list(range(1200)))
    engine = KSPEngine(subgraph, EngineConfig(alpha=3))
    directory = tmp_path_factory.mktemp("engine")
    engine.save(directory)
    return engine, directory


class TestIndexSerialization:
    def test_reachability_round_trip(self, tmp_path):
        graph = build_example_graph()
        original = KSPEngine(graph, EngineConfig(build_alpha=False)).reachability
        path = tmp_path / "reach.idx"
        save_reachability(original, path)
        restored = load_reachability(path, graph)
        for vertex in graph.vertices():
            for term in ("ancient", "architecture", "history", "zzzz"):
                assert restored.can_reach_term(
                    vertex, term
                ) == original.can_reach_term(vertex, term), (vertex, term)
        assert restored.size_bytes() == original.size_bytes()

    def test_grail_not_persistable(self, tmp_path):
        graph = build_example_graph()
        engine = KSPEngine(graph, EngineConfig(build_alpha=False, reach_method="grail"))
        with pytest.raises(ValueError):
            save_reachability(engine.reachability, tmp_path / "reach.idx")

    def test_alpha_round_trip(self, tmp_path):
        graph = build_example_graph()
        engine = KSPEngine(graph, EngineConfig(alpha=2))
        path = tmp_path / "alpha.idx"
        save_alpha_index(engine.alpha_index, path)
        restored = load_alpha_index(path)
        assert restored.alpha == 2
        view_original = engine.alpha_index.query_view(EXAMPLE_KEYWORDS)
        view_restored = restored.query_view(EXAMPLE_KEYWORDS)
        for place, _ in graph.places():
            assert view_restored.place_looseness_bound(
                place
            ) == view_original.place_looseness_bound(place)
        for node in engine.rtree.iter_nodes():
            assert view_restored.node_looseness_bound(
                node.node_id
            ) == view_original.node_looseness_bound(node.node_id)
        assert restored.size_bytes() == engine.alpha_index.size_bytes()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.idx"
        path.write_bytes(b"garbage" * 10)
        graph = build_example_graph()
        with pytest.raises(ValueError):
            load_reachability(path, graph)
        with pytest.raises(ValueError):
            load_alpha_index(path)

    def test_graph_mismatch_detected(self, tmp_path):
        graph = build_example_graph()
        engine = KSPEngine(graph, EngineConfig(build_alpha=False))
        path = tmp_path / "reach.idx"
        save_reachability(engine.reachability, path)
        from repro.rdf.graph import RDFGraph

        other = RDFGraph()
        other.add_vertex("only")
        with pytest.raises(ValueError):
            load_reachability(path, other)


class TestEngineSaveLoad:
    def test_manifest_contents(self, saved_engine):
        engine, directory = saved_engine
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["vertices"] == engine.graph.vertex_count
        assert manifest["alpha"] == 3
        assert manifest["has_reachability"]
        assert manifest["has_alpha_index"]

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_loaded_engine_answers_identically(self, saved_engine, backend):
        engine, directory = saved_engine
        loaded = KSPEngine.load(directory, graph_backend=backend)
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=3, seed=19)
        )
        for query in generator.workload(5, "O"):
            for method in ("spp", "sp"):
                original = engine.query(query, method=method)
                restored = loaded.query(query, method=method)
                assert restored.roots() == original.roots()
                assert restored.scores() == original.scores()

    def test_loading_is_faster_than_building(self, saved_engine):
        import time

        engine, directory = saved_engine
        started = time.monotonic()
        KSPEngine.load(directory)
        load_seconds = time.monotonic() - started
        # The whole point of persistence: skip the alpha-radius BFS
        # preprocessing, the dominant build cost (Table 5).  The corpus is
        # sized so the margin is large enough to survive timing noise.
        alpha_build = engine.build_seconds["alpha_index"]
        assert load_seconds < alpha_build

    def test_paper_example_round_trip(self, tmp_path):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        engine.save(tmp_path / "engine")
        loaded = KSPEngine.load(tmp_path / "engine")
        result = loaded.query(Q1, EXAMPLE_KEYWORDS, k=2, method="sp")
        assert [p.root_label for p in result] == ["p1", "p2"]
        assert result[0].looseness == 6.0

    def test_unknown_backend_rejected(self, saved_engine):
        _, directory = saved_engine
        with pytest.raises(ValueError):
            KSPEngine.load(directory, graph_backend="cloud")

    def test_bad_format_rejected(self, saved_engine, tmp_path):
        _, directory = saved_engine
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text('{"format": 99}')
        with pytest.raises(ValueError):
            KSPEngine.load(bad)


class TestManifestValidation:
    """``KSPEngine.load`` must reject a graph/manifest mismatch.

    A silently mismatched pair is the worst failure mode — the alpha
    index and reachability labels were built for a *different* graph and
    would mis-answer queries without any error.  Each tampered count
    must be rejected with a message naming the offending field.
    """

    @pytest.fixture()
    def tampered_copy(self, saved_engine, tmp_path):
        import shutil

        _, directory = saved_engine
        copy = tmp_path / "tampered"
        shutil.copytree(directory, copy)
        return copy

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    @pytest.mark.parametrize("field", ["vertices", "edges", "places"])
    def test_count_mismatch_names_the_field(self, tampered_copy, field, backend):
        manifest_path = tampered_copy / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest[field] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match=field):
            KSPEngine.load(tampered_copy, graph_backend=backend)

    def test_untampered_copy_loads(self, tampered_copy):
        assert KSPEngine.load(tampered_copy).graph.vertex_count > 0
