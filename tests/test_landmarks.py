"""The human-readable landmarks demo corpus."""

import pytest

from repro.core.engine import KSPEngine
from repro.core.config import EngineConfig
from repro.datagen.landmarks import (
    CITIES,
    generate_landmark_triples,
    landmark_graph,
)


@pytest.fixture(scope="module")
def engine():
    return KSPEngine(landmark_graph(landmarks_per_city=4, seed=7), EngineConfig(alpha=2))


class TestCorpusShape:
    def test_deterministic(self):
        a = list(generate_landmark_triples(landmarks_per_city=3, seed=1))
        b = list(generate_landmark_triples(landmarks_per_city=3, seed=1))
        assert a == b
        c = list(generate_landmark_triples(landmarks_per_city=3, seed=2))
        assert a != c

    def test_every_city_and_landmark_is_a_place(self, engine):
        graph = engine.graph
        expected_places = len(CITIES) * (1 + 4)  # city + its landmarks
        assert graph.place_count() == expected_places

    def test_landmark_coordinates_near_city(self):
        graph = landmark_graph(landmarks_per_city=3, seed=3)
        for city, x, y in CITIES:
            city_vertex = graph.vertex_by_label(
                "http://landmarks.example.org/resource/" + city
            )
            location = graph.location(city_vertex)
            assert location.x == pytest.approx(x)
            for vertex in graph.vertices():
                label = graph.label(vertex)
                if label.startswith(
                    "http://landmarks.example.org/resource/%s_" % city
                ) and graph.is_place(vertex):
                    spot = graph.location(vertex)
                    assert abs(spot.x - x) < 0.1
                    assert abs(spot.y - y) < 0.1

    def test_documents_are_readable_words(self, engine):
        vocabulary = set(engine.inverted_index.vocabulary())
        assert "gothic" in vocabulary
        assert "cathedral" in vocabulary
        assert "medieval" in vocabulary
        assert not any(term.startswith("kw0") for term in vocabulary)


class TestQueries:
    def test_style_query_returns_abbeys(self, engine):
        # Searching for romanesque monasteries: only Abbey landmarks carry
        # the "monastery" keyword in their own document.
        result = engine.query(
            (43.68, 4.63), ["romanesque", "monastery"], k=3, method="sp"
        )
        assert result.places
        top = result[0]
        assert "Abbey" in top.root_label
        assert top.graph_distance("monastery") == 0

    def test_multi_hop_keywords(self, engine):
        # "emperor" only lives on figures/events: covering it requires
        # hops beyond the landmark itself.
        result = engine.query((48.86, 2.35), ["emperor", "palace"], k=2)
        if result.places:
            assert result[0].graph_distance("emperor") >= 1

    def test_all_algorithms_agree(self, engine):
        reference = None
        for method in ("bsp", "spp", "sp", "ta"):
            result = engine.query(
                (45.76, 4.84), ["gothic", "cathedral"], k=4, method=method
            )
            signature = [(p.root, round(p.score, 9)) for p in result]
            if reference is None:
                reference = signature
            else:
                assert signature == reference, method
