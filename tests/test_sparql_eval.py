"""SPARQL evaluation: joins, filters, built-ins, modifiers."""

import pytest

from repro.rdf.terms import IRI
from repro.sparql.ast import Variable
from repro.sparql.eval import QueryEngine
from repro.sparql.store import TripleStore

DATA = """\
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/alice> <http://x/knows> <http://x/carol> .
<http://x/bob> <http://x/knows> <http://x/carol> .
<http://x/alice> <http://x/age> "34"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/bob> <http://x/age> "25"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/carol> <http://x/age> "41"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/alice> <http://x/name> "Alice Lidell" .
<http://x/bob> <http://x/name> "Bob Stone" .
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/shop> <http://www.opengis.net/ont/geosparql#hasGeometry> "POINT(1.0 1.0)" .
<http://x/cafe> <http://www.opengis.net/ont/geosparql#hasGeometry> "POINT(5.0 5.0)" .
<http://x/shop> <http://x/name> "Corner Shop" .
<http://x/cafe> <http://x/name> "River Cafe" .
"""


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(TripleStore.from_ntriples(DATA))


def names(rows, variable="s"):
    return sorted(row[Variable(variable)].value.rsplit("/", 1)[-1] for row in rows)


class TestJoins:
    def test_single_pattern(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/knows> <http://x/carol> . }"
        )
        assert names(rows) == ["alice", "bob"]

    def test_two_hop_join(self, engine):
        rows = engine.select(
            "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }"
        )
        assert len(rows) == 1
        assert rows[0][Variable("a")] == IRI("http://x/alice")
        assert rows[0][Variable("c")] == IRI("http://x/carol")

    def test_type_pattern_with_a(self, engine):
        rows = engine.select("SELECT ?s WHERE { ?s a <http://x/Person> . }")
        assert names(rows) == ["alice", "bob"]

    def test_shared_variable_consistency(self, engine):
        # ?x knows ?x — nobody knows themselves.
        rows = engine.select("SELECT ?x WHERE { ?x <http://x/knows> ?x . }")
        assert rows == []

    def test_variable_predicate(self, engine):
        rows = engine.select(
            "SELECT DISTINCT ?p WHERE { <http://x/alice> ?p ?o . }"
        )
        predicates = {row[Variable("p")].local_name() for row in rows}
        assert predicates == {"knows", "age", "name", "type"}

    def test_no_match(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/knows> <http://x/nobody> . }"
        )
        assert rows == []

    def test_empty_pattern_list(self, engine):
        rows = engine.select("SELECT * WHERE { }")
        assert rows == [{}]


class TestFilters:
    def test_numeric_comparison(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?age . FILTER(?age > 30) }"
        )
        assert names(rows) == ["alice", "carol"]

    def test_arithmetic_in_filter(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?age . FILTER(?age * 2 < 60) }"
        )
        assert names(rows) == ["bob"]

    def test_contains(self, engine):
        rows = engine.select(
            'SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(CONTAINS(?n, "stone")) }'
        )
        assert names(rows) == ["bob"]

    def test_boolean_connectives(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?age . "
            "FILTER(?age < 30 || ?age > 40) }"
        )
        assert names(rows) == ["bob", "carol"]

    def test_negation(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?age . FILTER(!(?age < 30)) }"
        )
        assert names(rows) == ["alice", "carol"]

    def test_iri_equality(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/knows> ?o . "
            "FILTER(?o = <http://x/bob>) }"
        )
        assert names(rows) == ["alice"]

    def test_type_error_eliminates_solution(self, engine):
        # Comparing a name string with a number is an error, not a crash.
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(?n < 5) }"
        )
        assert rows == []

    def test_distance_builtin(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/name> ?n . "
            "FILTER(DISTANCE(?s, 0.0, 0.0) < 2.0) }"
        )
        assert names(rows) == ["shop"]

    def test_distance_unlocated_eliminated(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?a . "
            "FILTER(DISTANCE(?s, 0.0, 0.0) < 1000) }"
        )
        assert rows == []  # people have no geometry


class TestModifiers:
    def test_order_by_and_limit(self, engine):
        rows = engine.select(
            "SELECT ?s ?age WHERE { ?s <http://x/age> ?age . } "
            "ORDER BY ?age LIMIT 2"
        )
        assert names(rows) == sorted(["bob", "alice"])
        assert [row[Variable("age")].lexical for row in rows] == ["25", "34"]

    def test_order_by_desc(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?age . } ORDER BY DESC(?age)"
        )
        assert [names([row])[0] for row in rows] == ["carol", "alice", "bob"]

    def test_offset(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { ?s <http://x/age> ?age . } "
            "ORDER BY ?age LIMIT 2 OFFSET 1"
        )
        assert [names([row])[0] for row in rows] == ["alice", "carol"]

    def test_distinct(self, engine):
        rows = engine.select(
            "SELECT DISTINCT ?a WHERE { ?a <http://x/knows> ?b . }"
        )
        assert names(rows, "a") == ["alice", "bob"]

    def test_projection_drops_unselected(self, engine):
        rows = engine.select(
            "SELECT ?a WHERE { ?a <http://x/knows> ?b . } LIMIT 1"
        )
        assert set(rows[0]) == {Variable("a")}


class TestOrderByHeterogeneous:
    def test_mixed_types_do_not_crash(self, engine):
        rows = engine.select(
            "SELECT ?o WHERE { <http://x/alice> ?p ?o . } ORDER BY ?o"
        )
        # alice has 5 outgoing triples (two knows, age, name, type).
        assert len(rows) == 5
