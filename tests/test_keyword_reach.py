"""Keyword reachability (Pruning Rule 1 substrate)."""

import random

import pytest

from repro.rdf.graph import RDFGraph
from repro.reach.keyword import BFSReachability, KeywordReachabilityIndex
from repro.datagen.paper_example import build_example_graph


def random_document_graph(seed, n=12, terms=("aa", "bb", "cc", "dd")):
    rng = random.Random(seed)
    graph = RDFGraph()
    for index in range(n):
        document = {term for term in terms if rng.random() < 0.25}
        graph.add_vertex("v%d" % index, document=document)
    for _ in range(2 * n):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            graph.add_edge(a, b)
    return graph


class TestPaperExample:
    """Section 4.1: with keywords {church, architecture}, no qualified
    semantic place is rooted at p2 because p2 never reaches architecture."""

    def setup_method(self):
        self.graph = build_example_graph()
        self.index = KeywordReachabilityIndex(self.graph)
        self.p1 = self.graph.vertex_by_label("p1")
        self.p2 = self.graph.vertex_by_label("p2")

    def test_p2_cannot_reach_architecture(self):
        assert self.index.can_reach_term(self.p2, "church")
        assert not self.index.can_reach_term(self.p2, "architecture")
        assert not self.index.is_qualified(self.p2, ["church", "architecture"])

    def test_p1_reaches_its_subtree_terms(self):
        for term in ("ancient", "roman", "catholic", "history", "empire"):
            assert self.index.can_reach_term(self.p1, term)

    def test_p1_does_not_reach_p2_terms(self):
        assert not self.index.can_reach_term(self.p1, "anatolia")
        assert not self.index.can_reach_term(self.p1, "magdalene")

    def test_own_document_counts(self):
        assert self.index.can_reach_term(self.p1, "abbey")

    def test_unknown_term_unreachable(self):
        assert not self.index.can_reach_term(self.p1, "zzzz")
        assert not self.index.has_term("zzzz")

    def test_unreachable_keyword_reports_first_in_order(self):
        missing = self.index.unreachable_keyword(
            self.p2, ["architecture", "church"]
        )
        assert missing == "architecture"

    def test_query_counter_increments(self):
        before = self.index.queries_issued
        self.index.is_qualified(self.p1, ["ancient", "roman"])
        assert self.index.queries_issued == before + 2

    def test_short_circuits_on_first_failure(self):
        before = self.index.queries_issued
        self.index.is_qualified(self.p2, ["architecture", "church"])
        assert self.index.queries_issued == before + 1


class TestAgainstBFSReference:
    @pytest.mark.parametrize("method", ["pll", "grail"])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference(self, seed, method):
        graph = random_document_graph(seed)
        index = KeywordReachabilityIndex(graph, method=method)
        reference = BFSReachability(graph)
        for vertex in graph.vertices():
            for term in ("aa", "bb", "cc", "dd"):
                assert index.can_reach_term(vertex, term) == reference.can_reach_term(
                    vertex, term
                ), (vertex, term)

    def test_undirected_mode(self):
        graph = RDFGraph()
        a = graph.add_vertex("a", document={"x"})
        b = graph.add_vertex("b", document={"y"})
        graph.add_edge(a, b)
        directed = KeywordReachabilityIndex(graph)
        undirected = KeywordReachabilityIndex(graph, undirected=True)
        assert not directed.can_reach_term(b, "x")
        assert undirected.can_reach_term(b, "x")

    def test_restricted_vocabulary(self):
        graph = random_document_graph(1)
        index = KeywordReachabilityIndex(graph, vocabulary=["aa"])
        reference = BFSReachability(graph)
        for vertex in graph.vertices():
            assert index.can_reach_term(vertex, "aa") == reference.can_reach_term(
                vertex, "aa"
            )
        # Terms outside the vocabulary are reported unreachable.
        assert not index.can_reach_term(0, "bb")

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            KeywordReachabilityIndex(build_example_graph(), method="magic")

    def test_size_bytes_positive(self):
        index = KeywordReachabilityIndex(build_example_graph())
        assert index.size_bytes() > 0


class TestCycles:
    def test_reachability_through_cycle(self):
        graph = RDFGraph()
        a = graph.add_vertex("a", document=set())
        b = graph.add_vertex("b", document=set())
        c = graph.add_vertex("c", document={"target"})
        graph.add_edge(a, b)
        graph.add_edge(b, a)
        graph.add_edge(b, c)
        index = KeywordReachabilityIndex(graph)
        assert index.can_reach_term(a, "target")
        assert index.can_reach_term(b, "target")
        assert not index.can_reach_term(c, "zzz")
