"""Coverage for paths the focused suites do not reach."""

import math

import pytest

from repro.core.engine import KSPEngine
from repro.core.query import KSPQuery, KSPResult
from repro.core.stats import QueryStats
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, EXAMPLE_NTRIPLES, Q1
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.spatial.geometry import Point, Rect
from repro.core.config import EngineConfig


class TestQueryCreation:
    def test_untokenizable_keyword_falls_back_to_raw(self):
        # Single letters are dropped by the tokenizer; the raw lowercase
        # form is kept so the query stays non-empty.
        query = KSPQuery.create(Point(0, 0), ["X"], k=1)
        assert query.keywords == ("x",)

    def test_multiword_keyword_splits(self):
        query = KSPQuery.create(Point(0, 0), ["Roman Empire"], k=1)
        assert query.keywords == ("roman", "empire")

    def test_duplicates_after_normalization_removed(self):
        query = KSPQuery.create(Point(0, 0), ["Roman", "roman!"], k=1)
        assert query.keywords == ("roman",)

    def test_keyword_count_property(self):
        query = KSPQuery(location=Point(0, 0), keywords=("a", "b"), k=1)
        assert query.keyword_count == 2


class TestSemanticPlaceViews:
    def test_tree_edges(self, example_engine):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1)
        place = result[0]
        graph = example_engine.graph
        edges = {
            (graph.label(a), graph.label(b)) for a, b in place.tree_edges()
        }
        assert ("p1", "v1") in edges
        assert ("v1", "v4") in edges
        assert ("p1", "v2") in edges
        assert ("p1", "v3") in edges
        assert len(edges) == 4

    def test_result_container_empty(self):
        result = KSPResult(
            query=KSPQuery(location=Point(0, 0), keywords=("x",), k=1)
        )
        assert len(result) == 0
        assert result.scores() == []
        assert result.roots() == []
        assert isinstance(result.stats, QueryStats)

    def test_explain_report(self, example_engine):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="spp")
        report = result.explain()
        assert "p1" in report
        assert "f=1.3" in report
        assert "executed by SPP" in report
        assert "TQSP construction" in report
        assert "rule2 x1" in report  # Example 8's prune shows up

    def test_explain_empty_result(self, example_engine):
        result = example_engine.query(Q1, ["church", "architecture"], k=1)
        report = result.explain()
        assert "no qualified semantic place" in report


class TestSPPruningCounters:
    def test_rules_3_4_fire_on_synthetic_workload(self, tiny_yago_graph):
        """With a deep R-tree (small fanout), SP interleaves node
        expansion with result discovery, so the alpha enqueue filter
        (Rules 3/4) must actually skip entries somewhere in a workload."""
        import dataclasses

        engine = KSPEngine(tiny_yago_graph, EngineConfig(alpha=3, rtree_max_entries=4))
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=5, seed=71)
        )
        fired = 0
        for query in generator.workload(10, "O"):
            for k in (1, 5, 20):
                stats = engine.query(
                    dataclasses.replace(query, k=k), method="sp"
                ).stats
                fired += stats.pruned_rule3 + stats.pruned_rule4
        assert fired > 0

    def test_sp_without_node_pruning_still_correct(self, tiny_yago_engine):
        from repro.core.sp import sp_search

        engine = tiny_yago_engine
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=3, seed=72)
        )
        for query in generator.workload(4, "O"):
            with_pruning = engine.query(query, method="sp")
            without = sp_search(
                engine.graph, engine.rtree, engine.inverted_index,
                engine.reachability, engine.alpha_index, query,
                use_node_pruning=False,
            )
            assert without.roots() == with_pruning.roots()
            assert without.stats.pruned_rule3 == 0
            assert without.stats.pruned_rule4 == 0

    def test_sp_rule1_disabled_requires_no_reach_index(self, tiny_yago_engine):
        from repro.core.sp import sp_search

        engine = tiny_yago_engine
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=2, seed=73)
        )
        query = generator.original()
        result = sp_search(
            engine.graph, engine.rtree, engine.inverted_index, None,
            engine.alpha_index, query, use_rule1=False,
        )
        reference = engine.query(query, method="sp")
        assert result.roots() == reference.roots()

    def test_sp_rule1_without_index_rejected(self, tiny_yago_engine):
        from repro.core.sp import sp_search

        engine = tiny_yago_engine
        query = KSPQuery(location=Point(0, 0), keywords=("kw00000",), k=1)
        with pytest.raises(ValueError):
            sp_search(
                engine.graph, engine.rtree, engine.inverted_index, None,
                engine.alpha_index, query,
            )


class TestFileFormats:
    def test_from_turtle_file(self, tmp_path):
        ttl = (
            "@prefix ex: <http://ex.org/> .\n"
            "@prefix geo: <http://www.opengis.net/ont/geosparql#> .\n"
            'ex:Spot geo:hasGeometry "POINT(1 1)" ;\n'
            '        ex:note "ancient ruins" .\n'
        )
        path = tmp_path / "data.ttl"
        path.write_text(ttl, encoding="utf-8")
        engine = KSPEngine.from_file(path, EngineConfig(alpha=1))
        result = engine.query((1, 1), ["ancient"], k=1)
        assert len(result) == 1

    def test_from_file_defaults_to_ntriples(self, tmp_path):
        path = tmp_path / "data.nt"
        path.write_text(EXAMPLE_NTRIPLES, encoding="utf-8")
        engine = KSPEngine.from_file(path, EngineConfig(alpha=1))
        assert engine.graph.place_count() == 2


class TestGeometryGaps:
    def test_max_distance_corners(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.max_distance(Point(0, 0)) == pytest.approx(math.hypot(2, 2))
        assert rect.max_distance(Point(1, 1)) == pytest.approx(math.hypot(1, 1))

    def test_center(self):
        assert Rect(0, 0, 4, 2).center() == Point(2, 1)

    def test_contains_rect_partial(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert not outer.contains_rect(Rect(5, 5, 11, 6))


class TestEngineReportsOnLoadedState:
    def test_storage_report_after_load(self, tmp_path, example_graph):
        engine = KSPEngine(example_graph, EngineConfig(alpha=2))
        engine.save(tmp_path / "e")
        loaded = KSPEngine.load(tmp_path / "e")
        report = loaded.storage_report()
        assert report["reachability"] > 0
        assert report["alpha_index"] > 0
        dataset = loaded.dataset_report()
        assert dataset["places"] == 2
