"""Disk-resident graph store: format round-trip, buffer pool, algorithms."""

import pytest

from repro.core.engine import KSPEngine
from repro.datagen import QueryGenerator, WorkloadConfig
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.datagen.sampling import induced_subgraph
from repro.rdf.graph import RDFGraph
from repro.storage.diskgraph import DiskRDFGraph, write_disk_graph
from repro.storage.pages import BufferPool
from repro.core.config import EngineConfig


@pytest.fixture(scope="module")
def example_disk(tmp_path_factory):
    path = tmp_path_factory.mktemp("disk") / "example.rgrf"
    graph = build_example_graph()
    write_disk_graph(graph, path)
    disk = DiskRDFGraph(path)
    yield graph, disk
    disk.close()


@pytest.fixture(scope="module")
def corpus_disk(tiny_yago_graph, tmp_path_factory):
    subgraph = induced_subgraph(tiny_yago_graph, list(range(500)))
    path = tmp_path_factory.mktemp("disk") / "corpus.rgrf"
    write_disk_graph(subgraph, path)
    disk = DiskRDFGraph(path, capacity_pages=16)
    yield subgraph, disk
    disk.close()


class TestBufferPool:
    def test_read_spanning_pages(self, tmp_path):
        path = tmp_path / "data.bin"
        payload = bytes(range(256)) * 200  # 51200 bytes, > 6 pages
        path.write_bytes(payload)
        with BufferPool(path, capacity_pages=4) as pool:
            assert pool.read(0, 10) == payload[:10]
            assert pool.read(8190, 10) == payload[8190:8200]  # page boundary
            assert pool.read(100, 0) == b""
            assert pool.read(0, len(payload)) == payload

    def test_lru_eviction_and_stats(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"x" * (8192 * 8))
        with BufferPool(path, capacity_pages=2) as pool:
            pool.read(0, 1)          # page 0 miss
            pool.read(8192, 1)       # page 1 miss
            pool.read(0, 1)          # page 0 hit
            pool.read(8192 * 3, 1)   # page 3 miss, evicts page 1 (LRU)
            pool.read(8192, 1)       # page 1 miss again
            assert pool.stats.hits == 1
            assert pool.stats.misses == 4
            assert pool.stats.evictions >= 1
            assert 0 < pool.stats.hit_rate < 1

    def test_validation(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"x")
        with pytest.raises(ValueError):
            BufferPool(path, capacity_pages=0)
        with BufferPool(path) as pool, pytest.raises(ValueError):
            pool.read(-1, 4)


class TestFormatRoundTrip:
    def test_counts(self, example_disk):
        graph, disk = example_disk
        assert disk.vertex_count == graph.vertex_count
        assert disk.edge_count == graph.edge_count
        assert disk.place_count() == graph.place_count()

    def test_adjacency_identical(self, corpus_disk):
        graph, disk = corpus_disk
        for vertex in graph.vertices():
            assert list(disk.out_neighbors(vertex)) == list(
                graph.out_neighbors(vertex)
            )
            assert list(disk.in_neighbors(vertex)) == list(
                graph.in_neighbors(vertex)
            )

    def test_records_identical(self, corpus_disk):
        graph, disk = corpus_disk
        for vertex in graph.vertices():
            assert disk.label(vertex) == graph.label(vertex)
            assert disk.document(vertex) == graph.document(vertex)
            assert disk.location(vertex) == graph.location(vertex)

    def test_places_identical(self, corpus_disk):
        graph, disk = corpus_disk
        assert list(disk.places()) == list(graph.places())

    def test_label_lookup(self, example_disk):
        graph, disk = example_disk
        assert disk.vertex_by_label("p1") == graph.vertex_by_label("p1")
        assert disk.has_vertex_label("v3")
        assert not disk.has_vertex_label("nope")
        with pytest.raises(KeyError):
            disk.vertex_by_label("nope")

    def test_bfs_identical(self, corpus_disk):
        graph, disk = corpus_disk
        start = next(iter(graph.places()))[0]
        assert list(disk.bfs(start)) == list(graph.bfs(start))
        assert list(disk.bfs(start, undirected=True)) == list(
            graph.bfs(start, undirected=True)
        )

    def test_bounds_checked(self, example_disk):
        _, disk = example_disk
        with pytest.raises(IndexError):
            disk.out_neighbors(999)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.rgrf"
        path.write_bytes(b"not a graph file" * 10)
        with pytest.raises(ValueError):
            DiskRDFGraph(path)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.rgrf"
        write_disk_graph(RDFGraph(), path)
        with DiskRDFGraph(path) as disk:
            assert disk.vertex_count == 0
            assert list(disk.places()) == []

    def test_tiny_buffer_pool_still_correct(self, corpus_disk, tmp_path):
        graph, _ = corpus_disk
        path = tmp_path / "again.rgrf"
        write_disk_graph(graph, path)
        with DiskRDFGraph(path, capacity_pages=1, record_cache_size=2) as disk:
            for vertex in list(graph.vertices())[:50]:
                assert disk.document(vertex) == graph.document(vertex)
                assert list(disk.out_neighbors(vertex)) == list(
                    graph.out_neighbors(vertex)
                )
            assert disk.buffer_stats.evictions > 0


class TestAlgorithmsOnDiskGraph:
    def test_engine_over_disk_graph_matches_memory(self, tmp_path):
        graph = build_example_graph()
        path = tmp_path / "example.rgrf"
        write_disk_graph(graph, path)
        with DiskRDFGraph(path) as disk:
            memory_engine = KSPEngine(graph, EngineConfig(alpha=2))
            disk_engine = KSPEngine(disk, EngineConfig(alpha=2))
            for method in ("bsp", "spp", "sp", "ta"):
                memory_result = memory_engine.query(
                    Q1, EXAMPLE_KEYWORDS, k=2, method=method
                )
                disk_result = disk_engine.query(
                    Q1, EXAMPLE_KEYWORDS, k=2, method=method
                )
                assert [p.root_label for p in disk_result] == [
                    p.root_label for p in memory_result
                ]
                assert disk_result.scores() == memory_result.scores()

    def test_corpus_queries_match(self, corpus_disk):
        graph, disk = corpus_disk
        memory_engine = KSPEngine(graph, EngineConfig(alpha=2))
        disk_engine = KSPEngine(disk, EngineConfig(alpha=2))
        generator = QueryGenerator(
            graph, memory_engine.inverted_index, WorkloadConfig(keyword_count=2, seed=8)
        )
        for query in generator.workload(4, "O"):
            memory_result = memory_engine.query(query, method="sp")
            disk_result = disk_engine.query(query, method="sp")
            assert disk_result.roots() == memory_result.roots()
            assert disk_result.scores() == memory_result.scores()
