"""Document tokenizer behaviour."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import STOPWORDS, tokenize, tokenize_all, tokenize_unique


class TestTokenize:
    def test_underscores_split(self):
        assert tokenize("Montmajour_Abbey") == ["montmajour", "abbey"]

    def test_camel_case_kept_whole(self):
        # Matches Figure 1(b): "deathPlace" is a single token.
        assert tokenize("deathPlace") == ["deathplace"]

    def test_stopwords_removed(self):
        assert tokenize("the history of the empire") == ["history", "empire"]

    def test_short_tokens_removed(self):
        assert tokenize("a b cd") == ["cd"]

    def test_numbers_kept(self):
        assert tokenize("route 66") == ["route", "66"]

    def test_punctuation_split(self):
        assert tokenize("Fréjus-Toulon") == ["fr", "jus", "toulon"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []

    def test_duplicates_preserved_in_order(self):
        assert tokenize("roman roman empire") == ["roman", "roman", "empire"]


class TestTokenizeUnique:
    def test_deduplicates(self):
        assert tokenize_unique("roman roman empire") == frozenset(
            {"roman", "empire"}
        )

    def test_tokenize_all_unions(self):
        assert tokenize_all(["ancient rome", "roman empire"]) == frozenset(
            {"ancient", "rome", "roman", "empire"}
        )


class TestProperties:
    @given(st.text(max_size=80))
    def test_tokens_are_normalized(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert len(token) >= 2
            assert token not in STOPWORDS
            assert token.isalnum()

    @given(st.text(max_size=80))
    def test_unique_matches_set_of_tokenize(self, text):
        assert tokenize_unique(text) == frozenset(tokenize(text))

    @given(st.text(max_size=40), st.text(max_size=40))
    def test_concatenation_superset(self, a, b):
        combined = tokenize_unique(a + " " + b)
        assert tokenize_unique(a) <= combined
        assert tokenize_unique(b) <= combined
