"""Incremental kSP cursor: ranked streaming without a fixed k."""

import pytest

from repro.core.exhaustive import exhaustive_search
from repro.core.query import KSPQuery
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, Q2
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.core.config import EngineConfig


class TestOnPaperExample:
    def test_emits_in_score_order(self, example_engine):
        cursor = example_engine.cursor(Q1, EXAMPLE_KEYWORDS)
        places = list(cursor)
        assert [p.root_label for p in places] == ["p1", "p2"]
        assert places[0].score <= places[1].score

    def test_q2_order_flips(self, example_engine):
        places = list(example_engine.cursor(Q2, EXAMPLE_KEYWORDS))
        assert [p.root_label for p in places] == ["p2", "p1"]

    def test_take(self, example_engine):
        cursor = example_engine.cursor(Q1, EXAMPLE_KEYWORDS)
        first = cursor.take(1)
        assert [p.root_label for p in first] == ["p1"]
        rest = cursor.take(10)
        assert [p.root_label for p in rest] == ["p2"]
        assert cursor.take(1) == []

    def test_exhausts_cleanly(self, example_engine):
        cursor = example_engine.cursor(Q1, ["church", "architecture"])
        assert list(cursor) == []  # no qualified place

    def test_keywords_normalized(self, example_engine):
        places = list(example_engine.cursor(Q1, ["Ancient!", "ROMAN"]))
        assert places  # tokenizer applied as in engine.query

    def test_needs_indexes(self, example_graph):
        from repro.core.engine import KSPEngine

        engine = KSPEngine(example_graph, EngineConfig(build_alpha=False))
        with pytest.raises(RuntimeError):
            engine.cursor(Q1, EXAMPLE_KEYWORDS)


class TestAgainstExhaustive:
    @pytest.mark.parametrize("engine_name", ["tiny_dbpedia_engine", "tiny_yago_engine"])
    def test_stream_prefix_equals_topk(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=3, seed=61)
        )
        for query in generator.workload(5, "O"):
            reference = exhaustive_search(
                engine.graph, engine.inverted_index,
                KSPQuery(location=query.location, keywords=query.keywords, k=10),
            )
            cursor = engine.cursor(query.location, query.keywords)
            streamed = cursor.take(10)
            # Scores must match position by position (root ties at equal
            # scores may be ordered differently).
            assert [round(p.score, 9) for p in streamed] == [
                round(p.score, 9) for p in reference
            ]
            assert {p.root for p in streamed} == {p.root for p in reference}

    def test_laziness(self, tiny_yago_engine):
        """Taking one result must evaluate far fewer places than exist."""
        engine = tiny_yago_engine
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=3, seed=62)
        )
        query = generator.original()
        cursor = engine.cursor(query.location, query.keywords)
        cursor.take(1)
        assert cursor.stats.tqsp_computations < engine.graph.place_count() / 10

    def test_resume_consistency(self, tiny_dbpedia_engine):
        """take(2) + take(3) equals take(5) score-wise."""
        engine = tiny_dbpedia_engine
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=2, seed=63)
        )
        query = generator.original()
        split = engine.cursor(query.location, query.keywords)
        combined = split.take(2) + split.take(3)
        whole = engine.cursor(query.location, query.keywords).take(5)
        assert [round(p.score, 9) for p in combined] == [
            round(p.score, 9) for p in whole
        ]


class TestPollDeadlines:
    """Satellite regression: a paginated client cannot hang past the
    budget of the poll it is waiting on — each ``take``/``page`` accepts
    its own deadline, consulted inside the traversal and the TQSP BFS."""

    def _cursor(self, request):
        engine = request.getfixturevalue("tiny_yago_engine")
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=3, seed=64)
        )
        query = generator.original()
        return engine, query

    def test_expired_poll_returns_partial_page_not_hang(self, request):
        from tests.test_batch_robustness import ExpireAfterChecks

        engine, query = self._cursor(request)
        cursor = engine.cursor(query.location, query.keywords)
        # The poll's deadline expires after 0 cooperative checks: the
        # fetch must come back (possibly empty) with the flag set.
        page = cursor.take(5, timeout=ExpireAfterChecks(0))
        assert cursor.stats.timed_out
        assert len(page) < 5

    def test_next_poll_resumes_with_fresh_budget(self, request):
        from tests.test_batch_robustness import ExpireAfterChecks

        engine, query = self._cursor(request)
        untimed = engine.cursor(query.location, query.keywords).take(5)

        cursor = engine.cursor(query.location, query.keywords)
        starved = cursor.take(5, timeout=ExpireAfterChecks(0))
        assert cursor.stats.timed_out
        recovered = cursor.take(5 - len(starved))  # fresh, unbounded poll
        combined = starved + recovered
        assert [round(p.score, 9) for p in combined] == [
            round(p.score, 9) for p in untimed
        ]

    def test_expiry_between_polls_counts_checks_per_poll(self, request):
        from tests.test_batch_robustness import ExpireAfterChecks

        engine, query = self._cursor(request)
        cursor = engine.cursor(query.location, query.keywords)
        first = cursor.take(2, timeout=ExpireAfterChecks(10_000))
        assert not cursor.stats.timed_out
        second = cursor.take(2, timeout=ExpireAfterChecks(10_000))
        whole = engine.cursor(query.location, query.keywords).take(4)
        assert [round(p.score, 9) for p in first + second] == [
            round(p.score, 9) for p in whole
        ]

    def test_stream_deadline_still_raises_from_iteration(self, request):
        import pytest as _pytest

        from repro.core.config import QueryOptions
        from repro.core.stats import QueryTimeout
        from tests.test_batch_robustness import ExpireAfterChecks

        engine, query = self._cursor(request)
        cursor = engine.cursor(
            query.location,
            query.keywords,
            options=QueryOptions(timeout=ExpireAfterChecks(0)),
        )
        with _pytest.raises(QueryTimeout):
            list(cursor)

    def test_page_is_a_wire_schema_result(self, request):
        from repro.core.config import QueryOptions
        from tests.test_batch_robustness import ExpireAfterChecks

        engine, query = self._cursor(request)
        cursor = engine.cursor(
            query.location,
            query.keywords,
            options=QueryOptions(request_id="page-1"),
        )
        document = cursor.page(1, timeout=ExpireAfterChecks(10_000)).to_dict()
        assert document["request_id"] == "page-1"
        assert document["timed_out"] is False
        assert len(document["places"]) <= 1
