"""RDFGraph store: construction, traversal, components, accounting."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.spatial.geometry import Point


def build_chain(length):
    graph = RDFGraph()
    ids = [graph.add_vertex("v%d" % i) for i in range(length)]
    for a, b in zip(ids, ids[1:]):
        graph.add_edge(a, b)
    return graph, ids


class TestConstruction:
    def test_add_vertex_and_lookup(self):
        graph = RDFGraph()
        vertex = graph.add_vertex("a", document={"x"}, location=Point(1, 2))
        assert graph.label(vertex) == "a"
        assert graph.vertex_by_label("a") == vertex
        assert graph.document(vertex) == frozenset({"x"})
        assert graph.location(vertex) == Point(1, 2)
        assert graph.is_place(vertex)

    def test_duplicate_label_rejected(self):
        graph = RDFGraph()
        graph.add_vertex("a")
        with pytest.raises(ValueError):
            graph.add_vertex("a")

    def test_get_or_add_vertex(self):
        graph = RDFGraph()
        first = graph.get_or_add_vertex("a")
        assert graph.get_or_add_vertex("a") == first
        assert graph.vertex_count == 1

    def test_missing_vertex_label(self):
        graph = RDFGraph()
        with pytest.raises(KeyError):
            graph.vertex_by_label("nope")

    def test_parallel_edges_collapsed(self):
        graph = RDFGraph()
        a = graph.add_vertex("a")
        b = graph.add_vertex("b")
        graph.add_edge(a, b)
        graph.add_edge(a, b)
        assert graph.edge_count == 1
        assert list(graph.out_neighbors(a)) == [b]
        assert list(graph.in_neighbors(b)) == [a]

    def test_edge_bounds_checked(self):
        graph = RDFGraph()
        a = graph.add_vertex("a")
        with pytest.raises(IndexError):
            graph.add_edge(a, 99)

    def test_extend_document_unions(self):
        graph = RDFGraph()
        vertex = graph.add_vertex("a", document={"x"})
        graph.extend_document(vertex, {"y", "z"})
        assert graph.document(vertex) == frozenset({"x", "y", "z"})

    def test_predicate_recorded(self):
        graph = RDFGraph()
        a = graph.add_vertex("a")
        b = graph.add_vertex("b")
        graph.add_edge(a, b, predicate="knows")
        assert graph.predicate(a, b) == "knows"
        assert graph.predicate(b, a) is None

    def test_places_iteration(self):
        graph = RDFGraph()
        graph.add_vertex("a")
        p = graph.add_vertex("p", location=Point(0, 0))
        assert list(graph.places()) == [(p, Point(0, 0))]
        assert graph.place_count() == 1


class TestTraversal:
    def test_bfs_distances_on_chain(self):
        graph, ids = build_chain(5)
        result = {v: d for v, d, _ in graph.bfs(ids[0])}
        assert result == {ids[i]: i for i in range(5)}

    def test_bfs_respects_direction(self):
        graph, ids = build_chain(3)
        # From the tail, nothing is reachable forward.
        assert [v for v, _, _ in graph.bfs(ids[2])] == [ids[2]]

    def test_bfs_undirected(self):
        graph, ids = build_chain(3)
        result = {v: d for v, d, _ in graph.bfs(ids[2], undirected=True)}
        assert result == {ids[2]: 0, ids[1]: 1, ids[0]: 2}

    def test_bfs_parent_pointers(self):
        graph, ids = build_chain(4)
        parents = {v: p for v, _, p in graph.bfs(ids[0])}
        assert parents[ids[0]] == -1
        for i in range(1, 4):
            assert parents[ids[i]] == ids[i - 1]

    def test_bfs_shortest_over_diamond(self):
        graph = RDFGraph()
        a, b, c, d = (graph.add_vertex(x) for x in "abcd")
        graph.add_edge(a, b)
        graph.add_edge(a, c)
        graph.add_edge(b, d)
        graph.add_edge(c, d)
        distances = {v: dist for v, dist, _ in graph.bfs(a)}
        assert distances[d] == 2

    def test_shortest_path_length(self):
        graph, ids = build_chain(4)
        assert graph.shortest_path_length(ids[0], ids[3]) == 3
        assert graph.shortest_path_length(ids[3], ids[0]) is None
        assert graph.shortest_path_length(ids[3], ids[0], undirected=True) == 3

    def test_weakly_connected_components(self):
        graph = RDFGraph()
        a = graph.add_vertex("a")
        b = graph.add_vertex("b")
        c = graph.add_vertex("c")
        graph.add_edge(a, b)
        components = graph.weakly_connected_components()
        assert len(components) == 2
        assert sorted(components[0]) == [a, b]
        assert components[1] == [c]


class TestAccounting:
    def test_size_bytes_grows_with_content(self):
        small, _ = build_chain(3)
        large, _ = build_chain(300)
        assert 0 < small.size_bytes() < large.size_bytes()

    def test_edges_iteration(self):
        graph, ids = build_chain(3)
        assert sorted(graph.edges()) == [(ids[0], ids[1]), (ids[1], ids[2])]
