"""Deadline-safe batched serving: one bad query cannot kill a batch.

The ISSUE-2 regression: ``run_batch`` used to surface a worker
exception straight out of ``ThreadPoolExecutor.map``, discarding every
completed result.  These tests pin the fixed contract — timed-out
queries come back as partial results in their slot, arbitrary worker
exceptions come back as errored (empty) results, and the engine's
metrics expose the timeout count, latency histogram and cache hit
rate afterwards.
"""

from __future__ import annotations

import random

from repro.core.config import EngineConfig, QueryOptions
from repro.core.deadline import Deadline
from repro.core.engine import KSPEngine
from repro.core.query import KSPQuery
from repro.core.stats import QueryTimeout
from repro.spatial.geometry import Point

from tests.test_batch_cache_agreement import build_graph, random_queries


class ExpireAfterChecks(Deadline):
    """A deterministic deadline: expires after N cooperative polls."""

    def __init__(self, checks: int) -> None:
        super().__init__(at=float("inf"))
        self.remaining_checks = checks

    def expired(self) -> bool:
        if self.remaining_checks <= 0:
            return True
        self.remaining_checks -= 1
        return False


class SelectiveEngine:
    """Engine wrapper that sabotages designated queries.

    ``run_batch`` only needs the canonical ``engine.query(query,
    options=...)``; marked queries get an instantly-expired deadline
    (hung-query stand-in) or raise.
    """

    def __init__(self, inner, timeout_queries=(), error_queries=(), raise_timeout_queries=()):
        self._inner = inner
        self._timeout = set(id(q) for q in timeout_queries)
        self._error = set(id(q) for q in error_queries)
        self._raise_timeout = set(id(q) for q in raise_timeout_queries)
        self.metrics = inner.metrics

    def query(self, query, options=None):
        options = options or QueryOptions()
        if id(query) in self._error:
            raise RuntimeError("injected worker failure")
        if id(query) in self._raise_timeout:
            raise QueryTimeout()
        if id(query) in self._timeout:
            options = options.replace(timeout=0.0)
        return self._inner.query(query, options=options)

    def query_batch(self, queries, **kwargs):
        from repro.core.batch import run_batch

        return run_batch(self, queries, **kwargs)


def make_engine(seed=91):
    return KSPEngine(build_graph(seed), EngineConfig(alpha=2))


class TestTimeoutRobustness:
    def test_one_timed_out_query_does_not_abort_the_batch(self):
        engine = make_engine()
        workload = random_queries(random.Random(11), 20)
        flaky = SelectiveEngine(engine, timeout_queries=[workload[7]])
        report = flaky.query_batch(workload, workers=4, options=QueryOptions(method="sp"))

        assert len(report.results) == 20
        timed_out = [r for r in report.results if r.stats.timed_out]
        assert len(timed_out) == 1
        assert timed_out[0].query is workload[7]
        assert timed_out[0].incomplete
        assert report.timeout_count == 1
        # Every other slot answered normally.
        assert sum(1 for r in report.results if not r.incomplete) == 19
        assert "timed out" in report.summary()

    def test_metrics_expose_timeouts_latency_and_cache(self):
        engine = make_engine(92)
        workload = random_queries(random.Random(12), 20)
        flaky = SelectiveEngine(engine, timeout_queries=[workload[3]])
        flaky.query_batch(workload, workers=4, options=QueryOptions(method="sp"))
        text = engine.metrics_text()
        assert "ksp_query_timeouts_total 1" in text
        assert "ksp_query_latency_seconds_bucket" in text
        assert "ksp_query_latency_seconds_count 20" in text
        assert "ksp_tqsp_cache_hit_ratio" in text

    def test_worker_exception_recorded_not_fatal(self):
        engine = make_engine(93)
        workload = random_queries(random.Random(13), 10)
        flaky = SelectiveEngine(engine, error_queries=[workload[2], workload[8]])
        report = flaky.query_batch(workload, workers=4, options=QueryOptions(method="spp"))

        assert len(report.results) == 10
        errored = [r for r in report.results if r.stats.error is not None]
        assert len(errored) == 2
        assert all("RuntimeError: injected worker failure" == r.stats.error for r in errored)
        assert all(len(r.places) == 0 and r.incomplete for r in errored)
        assert report.error_count == 2
        assert "errored" in report.summary()

    def test_raw_query_timeout_from_worker_is_recorded(self):
        # A custom engine (or a raw cursor) may raise QueryTimeout
        # instead of returning a partial result; the batch still keeps
        # every slot and flags the offender as timed out.
        engine = make_engine(94)
        workload = random_queries(random.Random(14), 6)
        flaky = SelectiveEngine(engine, raise_timeout_queries=[workload[0]])
        report = flaky.query_batch(workload, workers=3, options=QueryOptions(method="bsp"))
        assert len(report.results) == 6
        assert report.results[0].stats.timed_out
        assert report.timeout_count == 1
        assert report.error_count == 0

    def test_sequential_path_equally_robust(self):
        engine = make_engine(95)
        workload = random_queries(random.Random(15), 5)
        flaky = SelectiveEngine(engine, error_queries=[workload[4]])
        report = flaky.query_batch(workload, workers=1, options=QueryOptions(method="sp"))
        assert len(report.results) == 5
        assert report.results[4].stats.error is not None


class TestPartialResults:
    def test_partial_topk_is_consistent_with_untimed_answer(self):
        """A deadline mid-query yields a sound partial answer.

        The untimed top-k scores are the k minimal scores over all
        qualified places, so any partial best-so-far list must be
        pointwise dominated by them; with no expiry the answers match
        exactly.  ``ExpireAfterChecks`` injects a deterministic expiry
        after N cooperative polls — no clock patching.
        """
        engine = make_engine(96)
        rng = random.Random(16)
        compared = 0
        for query in random_queries(rng, 12):
            full = engine.query(query, method="bsp")
            full_scores = full.scores()
            for checks in (0, 1, 2, 5):
                partial = engine.query(
                    query, method="bsp", timeout=ExpireAfterChecks(checks)
                )
                if not partial.stats.timed_out:
                    assert partial.scores() == full_scores
                    continue
                compared += 1
                assert partial.incomplete
                partial_scores = partial.scores()
                assert len(partial_scores) <= len(full_scores) or (
                    len(partial_scores) <= query.k
                )
                for rank, score in enumerate(partial_scores):
                    if rank < len(full_scores):
                        assert score >= full_scores[rank] - 1e-12
        assert compared > 0  # the injected deadlines actually fired

    def test_injected_deadline_fires_in_every_algorithm(self):
        engine = make_engine(97)
        query = KSPQuery.create(Point(0.0, 0.0), ["alpha", "beta"], k=3)
        for method in ("bsp", "spp", "sp", "ta"):
            result = engine.query(
                query, method=method, timeout=ExpireAfterChecks(0)
            )
            assert result.stats.timed_out, method
            assert result.incomplete, method


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_query(self):
        engine = make_engine(98)
        workload = random_queries(random.Random(17), 6)
        report = engine.query_batch(
            workload, workers=2, options=QueryOptions(method="sp"), slow_query_threshold=0.0
        )
        assert len(report.slow_queries) == 6
        # Slowest first.
        runtimes = [e.runtime_seconds for e in report.slow_queries]
        assert runtimes == sorted(runtimes, reverse=True)
        assert "slow queries" in report.summary()

    def test_timed_out_query_always_logged(self):
        engine = make_engine(99)
        workload = random_queries(random.Random(18), 8)
        flaky = SelectiveEngine(engine, timeout_queries=[workload[5]])
        report = flaky.query_batch(
            workload, workers=2, options=QueryOptions(method="sp"), slow_query_threshold=1000.0
        )
        assert [e.index for e in report.slow_queries] == [5]
        assert report.slow_queries[0].timed_out
        assert "timed out" in report.slow_queries[0].describe()

    def test_no_threshold_no_log(self):
        engine = make_engine(100)
        workload = random_queries(random.Random(19), 3)
        report = engine.query_batch(workload, workers=1, options=QueryOptions(method="sp"))
        assert report.slow_queries == []
