"""Turtle parser (the dump format of DBpedia/YAGO)."""

import pytest

from repro.rdf.ntriples import serialize
from repro.rdf.terms import IRI, BlankNode, Literal, Triple
from repro.rdf.turtle import RDF_TYPE, TurtleSyntaxError, parse_turtle
from repro.core.config import EngineConfig


def triples(text):
    return list(parse_turtle(text))


class TestBasics:
    def test_simple_triple(self):
        got = triples("<http://x/s> <http://x/p> <http://x/o> .")
        assert got == [Triple(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))]

    def test_prefix_directive(self):
        got = triples(
            "@prefix ex: <http://example.org/> .\n"
            "ex:alice ex:knows ex:bob .\n"
        )
        assert got[0].subject == IRI("http://example.org/alice")
        assert got[0].object == IRI("http://example.org/bob")

    def test_sparql_style_prefix(self):
        got = triples(
            "PREFIX ex: <http://example.org/>\n"
            "ex:a ex:p ex:b .\n"
        )
        assert got[0].subject == IRI("http://example.org/a")

    def test_base_resolution(self):
        got = triples(
            "@base <http://example.org/> .\n<alice> <knows> <bob> .\n"
        )
        assert got[0].subject == IRI("http://example.org/alice")
        # Absolute IRIs are untouched by @base.
        got = triples(
            "@base <http://example.org/> .\n<http://y/a> <p> <b> .\n"
        )
        assert got[0].subject == IRI("http://y/a")

    def test_a_keyword(self):
        got = triples("<http://x/s> a <http://x/City> .")
        assert got[0].predicate == RDF_TYPE

    def test_predicate_list_semicolons(self):
        got = triples(
            "<http://x/s> <http://x/p> <http://x/a> ;\n"
            "             <http://x/q> <http://x/b> ;\n"
            "             <http://x/r> <http://x/c> .\n"
        )
        assert len(got) == 3
        assert all(t.subject == IRI("http://x/s") for t in got)
        assert [t.predicate.local_name() for t in got] == ["p", "q", "r"]

    def test_trailing_semicolon_allowed(self):
        got = triples("<http://x/s> <http://x/p> <http://x/a> ; .")
        assert len(got) == 1

    def test_object_list_commas(self):
        got = triples("<http://x/s> <http://x/p> <http://x/a>, <http://x/b> .")
        assert len(got) == 2
        assert {t.object for t in got} == {IRI("http://x/a"), IRI("http://x/b")}

    def test_mixed_lists(self):
        got = triples(
            "<http://x/s> <http://x/p> <http://x/a>, <http://x/b> ; "
            "<http://x/q> <http://x/c> ."
        )
        assert len(got) == 3

    def test_blank_nodes(self):
        got = triples("_:a <http://x/p> _:b .")
        assert got[0].subject == BlankNode("a")
        assert got[0].object == BlankNode("b")

    def test_comments_and_blank_lines(self):
        got = triples(
            "# comment\n\n<http://x/s> <http://x/p> <http://x/o> . # trailing\n"
        )
        assert len(got) == 1


class TestLiterals:
    def test_plain_and_language(self):
        got = triples(
            '<http://x/s> <http://x/p> "hello" ; <http://x/q> "salut"@fr .'
        )
        assert got[0].object == Literal("hello")
        assert got[1].object == Literal("salut", language="fr")

    def test_typed(self):
        got = triples(
            '<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#int> .'
        )
        assert got[0].object.datatype.value.endswith("#int")

    def test_typed_with_pname(self):
        got = triples(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            '<http://x/s> <http://x/p> "5"^^xsd:int .'
        )
        assert got[0].object.datatype == IRI("http://www.w3.org/2001/XMLSchema#int")

    def test_bare_numbers(self):
        got = triples("<http://x/s> <http://x/p> 42, 3.14, 1e6 .")
        datatypes = [t.object.datatype.value.rsplit("#")[-1] for t in got]
        assert datatypes == ["integer", "decimal", "double"]

    def test_booleans(self):
        got = triples("<http://x/s> <http://x/p> true, false .")
        assert [t.object.lexical for t in got] == ["true", "false"]

    def test_escapes(self):
        got = triples(r'<http://x/s> <http://x/p> "a\"b\ncé" .')
        assert got[0].object.lexical == 'a"b\ncé'

    def test_long_string(self):
        got = triples('<http://x/s> <http://x/p> """multi\nline "quoted" text""" .')
        assert got[0].object.lexical == 'multi\nline "quoted" text'


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<http://x/s> <http://x/p> <http://x/o>",  # missing dot
            "<http://x/s> <http://x/p> .",  # missing object
            "ex:a ex:p ex:b .",  # undeclared prefix
            "<http://x/s> <http://x/p> [ <http://x/q> <http://x/o> ] .",  # anon bnode
            "<http://x/s> <http://x/p> ( 1 2 ) .",  # collection
            '"literal" <http://x/p> <http://x/o> .',  # literal subject
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(TurtleSyntaxError):
            triples(text)

    def test_error_carries_line(self):
        text = "<http://x/s> <http://x/p> <http://x/o> .\nbroken .\n"
        with pytest.raises(TurtleSyntaxError) as excinfo:
            triples(text)
        assert excinfo.value.line == 2


class TestPipelineCompatibility:
    def test_equivalent_to_ntriples(self):
        """The same data in Turtle and N-Triples yields identical triples."""
        from repro.rdf import ntriples

        ttl = (
            "@prefix ex: <http://ex.org/> .\n"
            "@prefix geo: <http://www.opengis.net/ont/geosparql#> .\n"
            'ex:Abbey geo:hasGeometry "POINT(43.71 4.66)" ;\n'
            "         ex:dedication ex:Saint_Peter .\n"
        )
        nt = (
            '<http://ex.org/Abbey> <http://www.opengis.net/ont/geosparql#hasGeometry> "POINT(43.71 4.66)" .\n'
            "<http://ex.org/Abbey> <http://ex.org/dedication> <http://ex.org/Saint_Peter> .\n"
        )
        assert set(parse_turtle(ttl)) == set(ntriples.parse(nt))

    def test_engine_builds_from_turtle(self):
        from repro.core.engine import KSPEngine

        ttl = (
            "@prefix ex: <http://ex.org/> .\n"
            "@prefix geo: <http://www.opengis.net/ont/geosparql#> .\n"
            'ex:Abbey geo:hasGeometry "POINT(0 0)" ;\n'
            "         ex:dedication ex:Saint_Peter .\n"
            'ex:Saint_Peter ex:description "catholic roman" .\n'
        )
        engine = KSPEngine.from_triples(parse_turtle(ttl), EngineConfig(alpha=1))
        result = engine.query((0.1, 0.1), ["catholic"], k=1)
        assert len(result) == 1
        assert result[0].root_label.endswith("Abbey")

    def test_round_trip_through_ntriples_serializer(self):
        ttl = (
            "@prefix ex: <http://ex.org/> .\n"
            'ex:a ex:p "v"@en , "w" ; ex:q 7 .\n'
        )
        from repro.rdf import ntriples

        original = list(parse_turtle(ttl))
        again = list(ntriples.parse(serialize(original)))
        assert set(again) == set(original)


class TestGzipFiles:
    def test_parse_turtle_file_reads_gzip(self, tmp_path):
        import gzip

        from repro.rdf.turtle import parse_turtle_file

        text = (
            "@prefix ex: <http://ex.org/> .\n"
            "ex:a ex:p ex:b ; ex:q \"lit\" .\n"
        )
        path = tmp_path / "data.ttl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write(text)
        triples = list(parse_turtle_file(path))
        assert triples == [
            Triple(IRI("http://ex.org/a"), IRI("http://ex.org/p"), IRI("http://ex.org/b")),
            Triple(IRI("http://ex.org/a"), IRI("http://ex.org/q"), Literal("lit")),
        ]
