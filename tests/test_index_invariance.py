"""Answer invariance across physical index configurations.

The kSP answer is defined by the data, not by index layout: any R-tree
fanout, split strategy or alpha radius must yield the same ranked places.
This stresses the admissibility of the node bounds (a wrong Lemma 4
aggregation would surface as a fanout-dependent answer)."""

import pytest

from repro.alpha.index import AlphaIndex
from repro.core.sp import sp_search
from repro.core.spp import spp_search
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.spatial.rtree import RTree


def signature(result):
    return [(p.root, round(p.score, 9)) for p in result]


@pytest.fixture(scope="module")
def workload(tiny_yago_engine):
    generator = QueryGenerator(
        tiny_yago_engine.graph,
        tiny_yago_engine.inverted_index,
        WorkloadConfig(keyword_count=3, k=5, seed=83),
    )
    return generator.workload(5, "O")


class TestRTreeShapeInvariance:
    @pytest.mark.parametrize("max_entries", [4, 8, 64])
    def test_sp_invariant_to_fanout(self, tiny_yago_engine, workload, max_entries):
        engine = tiny_yago_engine
        rtree = RTree.bulk_load(engine.graph.places(), max_entries=max_entries)
        alpha_index = AlphaIndex(engine.graph, rtree, alpha=2)
        for query in workload:
            reference = engine.query(query, method="sp")
            got = sp_search(
                engine.graph, rtree, engine.inverted_index,
                engine.reachability, alpha_index, query,
            )
            assert signature(got) == signature(reference)

    def test_sp_invariant_to_split_strategy(self, tiny_yago_engine, workload):
        engine = tiny_yago_engine
        for split in ("quadratic", "rstar"):
            rtree = RTree(max_entries=8, split=split)
            for key, point in engine.graph.places():
                rtree.insert(key, point)
            alpha_index = AlphaIndex(engine.graph, rtree, alpha=2)
            for query in workload:
                reference = engine.query(query, method="sp")
                got = sp_search(
                    engine.graph, rtree, engine.inverted_index,
                    engine.reachability, alpha_index, query,
                )
                assert signature(got) == signature(reference), split

    def test_spp_invariant_to_fanout(self, tiny_yago_engine, workload):
        engine = tiny_yago_engine
        rtree = RTree.bulk_load(engine.graph.places(), max_entries=5)
        for query in workload:
            reference = engine.query(query, method="spp")
            got = spp_search(
                engine.graph, rtree, engine.inverted_index,
                engine.reachability, query,
            )
            assert signature(got) == signature(reference)


class TestAlphaInvariance:
    @pytest.mark.parametrize("alpha", [0, 1, 4])
    def test_sp_invariant_to_alpha(self, tiny_yago_engine, workload, alpha):
        """Any alpha gives the same answers — only the pruning power and
        therefore the cost varies (Figure 6)."""
        engine = tiny_yago_engine
        alpha_index = AlphaIndex(engine.graph, engine.rtree, alpha=alpha)
        for query in workload:
            reference = engine.query(query, method="sp")
            got = sp_search(
                engine.graph, engine.rtree, engine.inverted_index,
                engine.reachability, alpha_index, query,
            )
            assert signature(got) == signature(reference)

    def test_larger_alpha_never_computes_more_tqsps(self, tiny_yago_engine, workload):
        engine = tiny_yago_engine
        small = AlphaIndex(engine.graph, engine.rtree, alpha=1)
        large = AlphaIndex(engine.graph, engine.rtree, alpha=3)
        for query in workload:
            cost_small = sp_search(
                engine.graph, engine.rtree, engine.inverted_index,
                engine.reachability, small, query,
            ).stats.tqsp_computations
            cost_large = sp_search(
                engine.graph, engine.rtree, engine.inverted_index,
                engine.reachability, large, query,
            ).stats.tqsp_computations
            assert cost_large <= cost_small
