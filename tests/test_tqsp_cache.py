"""TQSPCache semantics: exact entries, threshold interplay, pruned lower
bounds, LRU eviction and counter accounting."""

import math

import pytest

from repro.core.semantic_place import SearchStatus, TQSPSearch
from repro.core.stats import QueryStats
from repro.core.tqsp_cache import TQSPCache


def complete(looseness, keyword_vertices=None, parents=None):
    return TQSPSearch(
        SearchStatus.COMPLETE,
        looseness,
        keyword_vertices or {"t": 1},
        parents or {0: -1, 1: 0},
    )


KEY = TQSPCache.key(0, ["t"], False)


class TestExactEntries:
    def test_complete_hit_above_threshold(self):
        cache = TQSPCache()
        cache.store(KEY, complete(4.0), math.inf)
        got = cache.lookup(KEY, math.inf)
        assert got is not None
        assert got.status is SearchStatus.COMPLETE
        assert got.looseness == 4.0
        assert cache.hits == 1

    def test_complete_synthesizes_pruned_at_tight_threshold(self):
        # Algorithm 3's dynamic bound reaches the exact looseness on the
        # final covering vertex, so any threshold <= looseness would have
        # aborted the BFS: the cache must replay that verdict.
        cache = TQSPCache()
        cache.store(KEY, complete(4.0), math.inf)
        stats = QueryStats()
        got = cache.lookup(KEY, 3.0, stats=stats)
        assert got.status is SearchStatus.PRUNED
        assert got.looseness == math.inf
        assert stats.pruned_rule2 == 1

    def test_complete_exact_at_threshold_boundary(self):
        cache = TQSPCache()
        cache.store(KEY, complete(4.0), math.inf)
        assert cache.lookup(KEY, 4.0).status is SearchStatus.PRUNED
        assert cache.lookup(KEY, 4.0 + 1e-9).status is SearchStatus.COMPLETE

    def test_unqualified_is_terminal_at_any_threshold(self):
        cache = TQSPCache()
        cache.store(KEY, TQSPSearch(SearchStatus.UNQUALIFIED, math.inf), math.inf)
        stats = QueryStats()
        got = cache.lookup(KEY, 2.0, stats=stats)
        assert got.status is SearchStatus.UNQUALIFIED
        assert stats.unqualified_places == 1

    def test_cached_search_reports_zero_bfs_work(self):
        cache = TQSPCache()
        search = complete(4.0)
        search.vertices_visited = 123
        cache.store(KEY, search, math.inf)
        assert cache.lookup(KEY, math.inf).vertices_visited == 0


class TestPrunedBounds:
    def test_bound_reprunes_cheaper_threshold(self):
        cache = TQSPCache()
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 5.0)
        stats = QueryStats()
        got = cache.lookup(KEY, 4.0, stats=stats)
        assert got.status is SearchStatus.PRUNED
        assert cache.bound_reuses == 1
        assert stats.cache_bound_reuses == 1
        assert stats.pruned_rule2 == 1

    def test_bound_never_answers_higher_threshold(self):
        cache = TQSPCache()
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 5.0)
        assert cache.lookup(KEY, 6.0) is None
        assert cache.misses == 1

    def test_bound_tightens_to_max_observed(self):
        cache = TQSPCache()
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 3.0)
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 7.0)
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 5.0)
        assert cache.lookup(KEY, 7.0).status is SearchStatus.PRUNED
        assert cache.lookup(KEY, 7.5) is None

    def test_exact_result_upgrades_bound(self):
        cache = TQSPCache()
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 5.0)
        cache.store(KEY, complete(6.0), 7.0)
        got = cache.lookup(KEY, math.inf)
        assert got.status is SearchStatus.COMPLETE
        assert got.looseness == 6.0

    def test_bound_never_downgrades_exact(self):
        cache = TQSPCache()
        cache.store(KEY, complete(6.0), math.inf)
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), 5.0)
        assert cache.lookup(KEY, math.inf).status is SearchStatus.COMPLETE

    def test_infinite_threshold_prune_not_stored(self):
        cache = TQSPCache()
        cache.store(KEY, TQSPSearch(SearchStatus.PRUNED, math.inf), math.inf)
        assert len(cache) == 0


class TestLRU:
    def test_capacity_bound(self):
        cache = TQSPCache(capacity=3)
        for place in range(5):
            cache.store(TQSPCache.key(place, ["t"], False), complete(2.0), math.inf)
        assert len(cache) == 3
        assert cache.lookup(TQSPCache.key(0, ["t"], False), math.inf) is None
        assert (
            cache.lookup(TQSPCache.key(4, ["t"], False), math.inf) is not None
        )

    def test_lookup_refreshes_recency(self):
        cache = TQSPCache(capacity=2)
        key_a = TQSPCache.key(0, ["t"], False)
        key_b = TQSPCache.key(1, ["t"], False)
        cache.store(key_a, complete(2.0), math.inf)
        cache.store(key_b, complete(2.0), math.inf)
        cache.lookup(key_a, math.inf)  # a is now most recent
        cache.store(TQSPCache.key(2, ["t"], False), complete(2.0), math.inf)
        assert cache.lookup(key_a, math.inf) is not None
        assert cache.lookup(key_b, math.inf) is None

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            TQSPCache(capacity=0)


class TestKeying:
    def test_keyword_order_is_irrelevant(self):
        assert TQSPCache.key(3, ["a", "b"], False) == TQSPCache.key(
            3, ["b", "a"], False
        )

    def test_undirected_mode_separates_entries(self):
        cache = TQSPCache()
        cache.store(TQSPCache.key(0, ["t"], False), complete(2.0), math.inf)
        assert cache.lookup(TQSPCache.key(0, ["t"], True), math.inf) is None

    def test_counters_report(self):
        cache = TQSPCache(capacity=8)
        cache.store(KEY, complete(2.0), math.inf)
        cache.lookup(KEY, math.inf)
        cache.lookup(TQSPCache.key(9, ["t"], False), math.inf)
        counters = cache.counters()
        assert counters["entries"] == 1
        assert counters["capacity"] == 8
        assert counters["hits"] == 1
        assert counters["misses"] == 1


class TestThreadSafety:
    """Counter and membership reads are atomic under concurrent writers.

    Eight workers hammer one shared cache with interleaved stores and
    lookups while readers repeatedly call ``counters()`` / ``len`` /
    ``in``; every snapshot must be internally consistent (the fixed bug:
    unlocked reads could observe hits and misses from different
    instants, or race ``_put``'s eviction loop mid-mutation).
    """

    def test_eight_worker_hammer_keeps_counters_consistent(self):
        import threading

        from repro.analysis.runtime import LockOrderRegistry, OrderedLock

        cache = TQSPCache(capacity=64)
        # Runtime half of RL008: record every acquisition the hammer
        # makes and assert afterwards that the observed order is
        # acyclic.  The cache uses a single lock, so the order graph
        # must in fact stay empty — any edge means a second lock crept
        # into the hot path without the static analysis noticing.
        lock_registry = LockOrderRegistry()
        cache._lock = OrderedLock(
            "TQSPCache._lock", lock_registry, cache._lock
        )
        workers = 8
        rounds = 400
        start = threading.Barrier(workers + 1)
        snapshots = []
        errors = []

        def writer(worker_id):
            try:
                start.wait()
                for i in range(rounds):
                    key = TQSPCache.key((worker_id * rounds + i) % 96, ["t"], False)
                    if cache.lookup(key, math.inf) is None:
                        cache.store(key, complete(2.0), math.inf)
                    key in cache  # noqa: B015 - exercising the locked path
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                start.wait()
                for _ in range(rounds):
                    snapshots.append(cache.counters())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(workers)
        ] + [threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        lock_registry.assert_acyclic()
        assert lock_registry.edges() == {}  # single-lock hot path
        total_lookups = workers * rounds
        previous_events = -1
        for snap in snapshots:
            assert 0 <= snap["entries"] <= snap["capacity"] == 64
            events = snap["hits"] + snap["misses"] + snap["bound_reuses"]
            assert events <= total_lookups
            # One reader thread: event totals can only grow between its
            # successive snapshots.  A torn (unlocked) view could go
            # backwards.
            assert events >= previous_events
            previous_events = events
        final = cache.counters()
        assert final["hits"] + final["misses"] == total_lookups
        assert len(cache) == final["entries"] <= 64

    def test_counters_snapshot_is_detached(self):
        cache = TQSPCache(capacity=4)
        snap = cache.counters()
        snap["hits"] = 999
        assert cache.counters()["hits"] == 0
