"""Ranking functions and their pruning-bound semantics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ranking import MultiplicativeRanking, WeightedSumRanking

loosenesses = st.floats(min_value=1.0, max_value=1e3, allow_nan=False)
distances = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
thetas = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestMultiplicative:
    def test_paper_example_5(self):
        ranking = MultiplicativeRanking()
        assert ranking.score(6.0, 0.22) == pytest.approx(1.32)
        assert ranking.score(4.0, 1.28) == pytest.approx(5.12)

    def test_distance_only_bound_is_distance(self):
        # L >= 1 so f >= S — the BSP termination argument.
        ranking = MultiplicativeRanking()
        assert ranking.distance_only_bound(2.5) == 2.5

    def test_looseness_threshold_definition_4(self):
        ranking = MultiplicativeRanking()
        assert ranking.looseness_threshold(1.32, 1.28) == pytest.approx(1.03125)

    def test_threshold_at_zero_distance_is_infinite(self):
        ranking = MultiplicativeRanking()
        assert ranking.looseness_threshold(5.0, 0.0) == math.inf

    def test_threshold_at_infinite_theta(self):
        ranking = MultiplicativeRanking()
        assert ranking.looseness_threshold(math.inf, 3.0) == math.inf

    @given(loosenesses, distances, thetas)
    def test_threshold_semantics(self, looseness, distance, theta):
        """L >= L_w implies f(L, S) >= theta, and L < L_w implies f < theta."""
        ranking = MultiplicativeRanking()
        threshold = ranking.looseness_threshold(theta, distance)
        if looseness >= threshold:
            assert ranking.score(looseness, distance) >= theta * (1 - 1e-12)
        else:
            assert ranking.score(looseness, distance) < theta * (1 + 1e-12)

    @given(loosenesses, loosenesses, distances, distances)
    def test_monotonicity(self, l1, l2, s1, s2):
        ranking = MultiplicativeRanking()
        low = ranking.score(min(l1, l2), min(s1, s2))
        high = ranking.score(max(l1, l2), max(s1, s2))
        assert low <= high

    @given(loosenesses, distances)
    def test_bound_is_admissible(self, looseness, distance):
        ranking = MultiplicativeRanking()
        assert ranking.bound(1.0, distance) <= ranking.score(looseness, distance)


class TestWeightedSum:
    def test_beta_validation(self):
        with pytest.raises(ValueError):
            WeightedSumRanking(beta=0.0)
        with pytest.raises(ValueError):
            WeightedSumRanking(beta=1.0)

    def test_score(self):
        ranking = WeightedSumRanking(beta=0.25)
        assert ranking.score(4.0, 8.0) == pytest.approx(0.25 * 4 + 0.75 * 8)

    def test_distance_only_bound(self):
        ranking = WeightedSumRanking(beta=0.5)
        assert ranking.distance_only_bound(3.0) == pytest.approx(0.5 + 1.5)

    @given(
        loosenesses,
        distances,
        thetas,
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_threshold_semantics(self, looseness, distance, theta, beta):
        ranking = WeightedSumRanking(beta=beta)
        threshold = ranking.looseness_threshold(theta, distance)
        score = ranking.score(looseness, distance)
        if looseness >= threshold:
            assert score >= theta - 1e-6
        else:
            assert score < theta + 1e-6

    @given(loosenesses, distances, st.floats(min_value=0.05, max_value=0.95))
    def test_bound_is_admissible(self, looseness, distance, beta):
        ranking = WeightedSumRanking(beta=beta)
        assert (
            ranking.bound(1.0, distance)
            <= ranking.score(looseness, distance) + 1e-9
        )

    def test_repr(self):
        assert "0.3" in repr(WeightedSumRanking(beta=0.3))
        assert repr(MultiplicativeRanking()) == "MultiplicativeRanking()"
