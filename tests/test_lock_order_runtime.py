"""Runtime lock-order validation (repro.analysis.runtime).

Three layers: the registry's bookkeeping (edges, stacks, non-LIFO
release), the two assertions (acyclicity and observed-subset-of-static),
and the cross-validation loop — a Program built from a fixture whose
lock nesting matches what OrderedLocks then observe at runtime.
"""

import ast
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis.program import Program
from repro.analysis.rules.base import ModuleInfo
from repro.analysis.runtime import (
    LockOrderRegistry,
    LockOrderViolation,
    OrderedLock,
)


def build_program(files):
    """Program over {relpath: source} fixture modules."""
    modules = []
    for relpath, source in files.items():
        source = textwrap.dedent(source)
        modules.append(
            ModuleInfo(
                path=Path("/fixture") / relpath,
                relpath=relpath,
                tree=ast.parse(source),
                lines=source.splitlines(),
            )
        )
    return Program.build(modules)


class TestRegistryBookkeeping:
    def test_nested_acquire_records_edge(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)
        with a:
            with b:
                pass
        assert ("A", "B") in registry.edges()
        assert ("B", "A") not in registry.edges()

    def test_flat_acquisitions_record_nothing(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)
        with a:
            pass
        with b:
            pass
        assert registry.edges() == {}

    def test_failed_nonblocking_acquire_leaves_no_held_state(self):
        registry = LockOrderRegistry()
        inner = threading.Lock()
        inner.acquire()  # someone else holds it
        a = OrderedLock("A", registry, inner)
        b = OrderedLock("B", registry)
        assert a.acquire(blocking=False) is False
        with b:  # A must not be considered held here
            pass
        assert registry.edges() == {}
        inner.release()

    def test_non_lifo_release_keeps_outer_held(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)
        c = OrderedLock("C", registry)
        a.acquire()
        b.acquire()
        a.release()  # out of order: B stays held
        c.acquire()
        c.release()
        b.release()
        edges = registry.edges()
        assert ("A", "B") in edges
        assert ("B", "C") in edges
        assert ("A", "C") not in edges  # A was released before C

    def test_reentrant_rlock_self_edge(self):
        registry = LockOrderRegistry()
        r = OrderedLock("R", registry, threading.RLock())
        with r:
            with r:
                pass
        assert ("R", "R") in registry.edges()


class TestAssertions:
    def test_consistent_order_is_acyclic(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)
        for _ in range(3):
            with a:
                with b:
                    pass
        registry.assert_acyclic()  # must not raise

    def test_opposite_order_across_threads_is_a_cycle(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)

        # Sequential opposite-order nesting: no real deadlock happens,
        # but the order graph gains A->B and B->A — exactly the hazard
        # the validator exists to catch before a hammer hits the
        # interleaving that hangs.
        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join()

        with pytest.raises(LockOrderViolation) as exc:
            registry.assert_acyclic()
        message = str(exc.value)
        assert "A" in message and "B" in message
        assert "cycle" in message

    def test_observed_subset_of_static_passes(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)
        with a:
            with b:
                pass
        registry.assert_consistent_with({("A", "B"), ("A", "C")})

    def test_unpredicted_observed_edge_raises(self):
        registry = LockOrderRegistry()
        a = OrderedLock("A", registry)
        b = OrderedLock("B", registry)
        with b:
            with a:
                pass
        with pytest.raises(LockOrderViolation) as exc:
            registry.assert_consistent_with({("A", "B")})
        assert "call-graph hole" in str(exc.value)

    def test_self_edges_exempt_from_static_check(self):
        registry = LockOrderRegistry()
        r = OrderedLock("R", registry, threading.RLock())
        with r:
            with r:
                pass
        registry.assert_consistent_with(set())  # (R, R) is exempt


class TestStaticDynamicCrossValidation:
    """The static graph predicts what OrderedLocks then observe."""

    FIXTURE = """
    import threading

    class Pair:
        def __init__(self):
            self.outer = threading.Lock()
            self.inner = threading.Lock()

        def nested(self):
            with self.outer:
                self._under_outer()

        def _under_outer(self):
            with self.inner:
                pass
    """

    def test_observed_edges_match_static_prediction(self):
        program = build_program({"pair.py": self.FIXTURE})
        static = {
            (held.rsplit(".", 1)[-1], acquired.rsplit(".", 1)[-1])
            for held, acquired in program.lock_order_pairs()
        }
        # The interprocedural edge outer->inner must be predicted.
        assert ("outer", "inner") in static

        registry = LockOrderRegistry()
        outer = OrderedLock("outer", registry)
        inner = OrderedLock("inner", registry)

        def nested():
            with outer:
                with inner:
                    pass

        threads = [threading.Thread(target=nested) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        registry.assert_acyclic()
        registry.assert_consistent_with(static)

    def test_hole_in_static_graph_is_reported(self):
        # Drop the static edge: the runtime side must notice the
        # unpredicted observation instead of silently passing.
        registry = LockOrderRegistry()
        outer = OrderedLock("outer", registry)
        inner = OrderedLock("inner", registry)
        with outer:
            with inner:
                pass
        with pytest.raises(LockOrderViolation):
            registry.assert_consistent_with(set())
