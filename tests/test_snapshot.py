"""The snapshot format: write → mmap-read roundtrip parity, fail-closed
validation of damaged files, and the zero-copy view layer.

A snapshot engine must be observationally identical to the engine that
wrote it — same manifest hash, same golden wire bytes, same answers on
every method — while serving from ``memoryview``s over one mmap.
"""

import json
import struct
from pathlib import Path

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.storage.snapshot import (
    _HEADER,
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    SnapshotFile,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

TIMING_FIELDS = ("runtime_seconds", "semantic_seconds", "other_seconds")


def _normalize(document):
    for field in TIMING_FIELDS:
        if field in document.get("stats", {}):
            document["stats"][field] = 0.0
    return document


def _signature(result):
    return [(p.root, round(p.score, 9), p.looseness) for p in result]


@pytest.fixture(scope="module")
def example_snapshot(tmp_path_factory):
    """(path, built engine) for the paper's Figure 1 example graph."""
    path = tmp_path_factory.mktemp("snap") / "example.snap"
    engine = KSPEngine(
        build_example_graph(), EngineConfig(alpha=3, tqsp_cache_size=0)
    )
    engine.save_snapshot(path)
    return path, engine


@pytest.fixture(scope="module")
def yago_snapshot(tmp_path_factory, tiny_yago_engine):
    path = tmp_path_factory.mktemp("snap") / "yago.snap"
    tiny_yago_engine.save_snapshot(path)
    return path, tiny_yago_engine


@pytest.fixture(scope="module")
def yago_snapshot_engine(yago_snapshot):
    path, _ = yago_snapshot
    return KSPEngine.from_snapshot(path)


class TestRoundtrip:
    def test_manifest_hash_matches_builder(self, yago_snapshot, yago_snapshot_engine):
        _, built = yago_snapshot
        assert yago_snapshot_engine.manifest_hash == built.manifest_hash

    def test_agreement_on_workload(self, yago_snapshot, yago_snapshot_engine):
        _, built = yago_snapshot
        generator = QueryGenerator(
            built.graph,
            built.inverted_index,
            WorkloadConfig(keyword_count=3, k=5, seed=17),
        )
        for query in generator.workload(4, "O"):
            for method in ("bsp", "spp", "sp", "ta"):
                expected = _signature(built.query(query, method=method))
                actual = _signature(
                    yago_snapshot_engine.query(query, method=method)
                )
                assert actual == expected, (method, query)

    def test_golden_pin_from_snapshot(self, example_snapshot):
        path, _ = example_snapshot
        engine = KSPEngine.from_snapshot(
            path, EngineConfig(alpha=3, tqsp_cache_size=0)
        )
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method="sp", request_id="golden-1"
        )
        document = _normalize(result.to_dict())
        golden = json.loads((GOLDEN_DIR / "query_example.json").read_text())
        assert document == golden

    def test_graph_view_parity(self, yago_snapshot, yago_snapshot_engine):
        _, built = yago_snapshot
        graph = yago_snapshot_engine.graph
        assert graph.vertex_count == built.graph.vertex_count
        assert graph.edge_count == built.graph.edge_count
        assert graph.place_count() == built.graph.place_count()
        for vertex in range(0, built.graph.vertex_count, 7):
            assert list(graph.out_neighbors(vertex)) == list(
                built.graph.out_neighbors(vertex)
            )
            assert list(graph.in_neighbors(vertex)) == list(
                built.graph.in_neighbors(vertex)
            )
            assert graph.label(vertex) == built.graph.label(vertex)
            assert graph.document(vertex) == built.graph.document(vertex)
            assert graph.location(vertex) == built.graph.location(vertex)

    def test_inverted_index_parity(self, yago_snapshot, yago_snapshot_engine):
        _, built = yago_snapshot
        index = yago_snapshot_engine.inverted_index
        assert index.vocabulary_size() == built.inverted_index.vocabulary_size()
        assert index.average_posting_length() == pytest.approx(
            built.inverted_index.average_posting_length()
        )
        for term in sorted(built.inverted_index.vocabulary())[::9]:
            assert term in index
            assert list(index.posting(term)) == list(
                built.inverted_index.posting(term)
            )
            assert index.document_frequency(
                term
            ) == built.inverted_index.document_frequency(term)
        assert "no-such-term-ever" not in index
        assert list(index.posting("no-such-term-ever")) == []

    def test_alpha_index_parity(self, yago_snapshot, yago_snapshot_engine):
        _, built = yago_snapshot
        alpha = yago_snapshot_engine.alpha_index
        terms = sorted(built.inverted_index.vocabulary())[::13]
        for place, _ in built.graph.places():
            for term in terms:
                assert alpha.place_neighborhood_distance(
                    place, term
                ) == built.alpha_index.place_neighborhood_distance(place, term)

    def test_snapshot_engine_cannot_be_resnapshotted(
        self, yago_snapshot_engine, tmp_path
    ):
        with pytest.raises(SnapshotError):
            yago_snapshot_engine.save_snapshot(tmp_path / "again.snap")


class TestFailClosed:
    def _bytes(self, example_snapshot):
        path, _ = example_snapshot
        return path.read_bytes()

    def test_truncated_file(self, example_snapshot, tmp_path):
        data = self._bytes(example_snapshot)
        bad = tmp_path / "truncated.snap"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="truncated"):
            SnapshotFile(bad)

    def test_tiny_file(self, tmp_path):
        bad = tmp_path / "tiny.snap"
        bad.write_bytes(b"RS")
        with pytest.raises(SnapshotError, match="truncated"):
            SnapshotFile(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot open"):
            SnapshotFile(tmp_path / "nope.snap")

    def test_bad_magic(self, example_snapshot, tmp_path):
        data = bytearray(self._bytes(example_snapshot))
        data[0] ^= 0xFF
        bad = tmp_path / "magic.snap"
        bad.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="not a repro snapshot"):
            SnapshotFile(bad)

    def test_wrong_version(self, example_snapshot, tmp_path):
        data = bytearray(self._bytes(example_snapshot))
        # The version is the u32 right after the 8-byte magic.
        struct.pack_into("<I", data, len(MAGIC), FORMAT_VERSION + 1)
        bad = tmp_path / "version.snap"
        bad.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="version"):
            SnapshotFile(bad)

    def test_corrupted_section_table(self, example_snapshot, tmp_path):
        data = bytearray(self._bytes(example_snapshot))
        data[_HEADER.size] ^= 0xFF
        bad = tmp_path / "table.snap"
        bad.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="section table"):
            SnapshotFile(bad)

    def test_corrupted_payload_fails_verify(self, example_snapshot, tmp_path):
        path, _ = example_snapshot
        with SnapshotFile(path) as pristine:
            offset, length = pristine._sections["graph.out_targets"]
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        bad = tmp_path / "payload.snap"
        bad.write_bytes(bytes(data))
        # Open-time validation only covers the header and table...
        snapshot = SnapshotFile(bad)
        try:
            with pytest.raises(SnapshotError, match="content hash"):
                snapshot.verify()
        finally:
            snapshot.close()
        # ...and verify=True fails closed before serving anything.
        with pytest.raises(SnapshotError, match="content hash"):
            SnapshotFile(bad, verify=True)

    def test_unknown_section_raises(self, example_snapshot):
        path, _ = example_snapshot
        with SnapshotFile(path) as snapshot:
            with pytest.raises(SnapshotError, match="no section"):
                snapshot.section("no.such.section")


class TestZeroCopy:
    def test_sections_are_memoryviews_over_one_map(self, example_snapshot):
        path, _ = example_snapshot
        snapshot = SnapshotFile(path)
        view = snapshot.section("graph.out_targets")
        assert isinstance(view, memoryview)
        assert snapshot.stats.maps == 1
        assert snapshot.stats.bytes_mapped == snapshot.size_bytes
        assert snapshot.stats.section_reads >= 1
        # A live view pins the mapping: close() must fail, not corrupt.
        with pytest.raises(BufferError):
            snapshot.close()
        view.release()
        snapshot.close()

    def test_metrics_exported(self, yago_snapshot_engine):
        text = yago_snapshot_engine.metrics_text()
        assert "ksp_snapshot_maps_total" in text
        assert "ksp_snapshot_bytes_mapped" in text
        assert "ksp_snapshot_section_reads_total" in text

    def test_read_hint(self, yago_snapshot_engine):
        yago_snapshot_engine.graph.read_hint("random")
        yago_snapshot_engine.graph.read_hint("sequential")
        yago_snapshot_engine.graph.read_hint("normal")
        with pytest.raises(ValueError):
            yago_snapshot_engine.graph.read_hint("backwards")

    def test_verify_passes_on_pristine_file(self, example_snapshot):
        path, _ = example_snapshot
        with SnapshotFile(path) as snapshot:
            snapshot.verify()
            assert "manifest" in snapshot.names()
            assert snapshot.manifest["snapshot"]["page_size"] == 4096
            assert snapshot.manifest["engine"]["alpha"] == 3
