"""Fleet metrics plane: spool files, state merging and load reports.

The aggregation contract under test (DESIGN.md §16): counters from
sibling workers **sum**, histograms merge **bucket-wise** (exactly when
bounds agree, at each source's own granularity when they differ),
gauges stay attributable via an added ``worker="<pid>"`` label, and a
scrape answered by *any* worker of a fleet renders the same coherent
merged state — monotone across consecutive scrapes.
"""

import json

import pytest

from repro.core.metrics import MetricsRegistry
from repro.obs.fleet import (
    FANOUT_BUCKETS,
    label_state,
    load_report,
    merge_spools,
    merge_states,
    read_metrics_spools,
    render_state,
    write_metrics_spool,
)


def registry_with(counter=0, gauge=None, observations=()):
    registry = MetricsRegistry()
    c = registry.counter("ksp_queries_total", "queries served")
    for _ in range(counter):
        c.inc()
    if gauge is not None:
        registry.gauge("ksp_cache_entries", "cache occupancy").set(gauge)
    h = registry.histogram("ksp_latency_seconds", "latency", buckets=(0.1, 1.0))
    for value in observations:
        h.observe(value)
    return registry


def series(state, name):
    return [entry for entry in state["series"] if entry["name"] == name]


# ----------------------------------------------------------------------
# Spool files


class TestSpools:
    def test_write_read_roundtrip(self, tmp_path):
        state = registry_with(counter=3).state()
        path = write_metrics_spool(tmp_path, state, index=0, pid=111)
        assert path.name == "metrics-111.json"
        spools = read_metrics_spools(tmp_path)
        assert len(spools) == 1
        assert spools[0]["pid"] == 111
        assert spools[0]["index"] == 0
        assert spools[0]["state"] == state

    def test_ghost_spool_for_same_index_is_dropped(self, tmp_path):
        """A respawned worker's dead predecessor must not be summed
        forever: only the freshest spool per worker index survives."""
        write_metrics_spool(tmp_path, registry_with(counter=100).state(),
                            index=0, pid=111)
        write_metrics_spool(tmp_path, registry_with(counter=2).state(),
                            index=0, pid=222)
        spools = read_metrics_spools(tmp_path)
        assert [record["pid"] for record in spools] == [222]
        merged = merge_spools(spools)
        assert series(merged, "ksp_queries_total")[0]["data"]["value"] == 2.0

    def test_unreadable_and_foreign_files_are_skipped(self, tmp_path):
        write_metrics_spool(tmp_path, registry_with(counter=1).state(),
                            index=0, pid=111)
        (tmp_path / "metrics-999.json").write_text("{not json", encoding="utf-8")
        (tmp_path / "metrics-998.json").write_text(
            json.dumps({"version": 99, "state": {}}), encoding="utf-8"
        )
        (tmp_path / "worker-0.json").write_text("{}", encoding="utf-8")
        spools = read_metrics_spools(tmp_path)
        assert [record["pid"] for record in spools] == [111]


# ----------------------------------------------------------------------
# Merging


class TestMergeStates:
    def test_counters_sum(self):
        merged = merge_states(
            [registry_with(counter=3).state(), registry_with(counter=4).state()]
        )
        assert series(merged, "ksp_queries_total")[0]["data"]["value"] == 7.0

    def test_gauges_keep_one_series_per_source(self):
        merged = merge_states(
            [
                registry_with(gauge=10).state(),
                registry_with(gauge=20).state(),
            ],
            source_labels=[{"worker": "111"}, {"worker": "222"}],
        )
        entries = series(merged, "ksp_cache_entries")
        assert len(entries) == 2
        by_worker = {
            dict(entry["labels"])["worker"]: entry["data"]["value"]
            for entry in entries
        }
        assert by_worker == {"111": 10.0, "222": 20.0}

    def test_identical_bucket_histograms_merge_exactly(self):
        a = registry_with(observations=[0.05, 0.5]).state()
        b = registry_with(observations=[0.5, 2.0]).state()
        merged = merge_states([a, b])
        data = series(merged, "ksp_latency_seconds")[0]["data"]
        assert data["buckets"] == [0.1, 1.0]
        assert data["counts"] == [1, 2, 1]  # owning-bucket counts + +Inf
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(3.05)

    def test_differing_buckets_merge_onto_the_union(self):
        """Each observation keeps its own upper bound (which exists in
        the union), so cumulative counts stay exact at each source's own
        granularity — no observation moves below its true bucket."""
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        b = MetricsRegistry()
        b.histogram("h", buckets=(0.5, 1.0)).observe(0.3)
        b.histogram("h", buckets=(0.5, 1.0)).observe(5.0)
        merged = merge_states([a.state(), b.state()])
        data = series(merged, "h")[0]["data"]
        assert data["buckets"] == [0.1, 0.5, 1.0]
        assert data["counts"] == [1, 1, 0, 1]
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(5.35)

    def test_merged_state_renders_as_prometheus_text(self):
        merged = merge_spools(
            [
                {"pid": 111, "state": registry_with(counter=1, gauge=5).state()},
                {"pid": 222, "state": registry_with(counter=2, gauge=7).state()},
            ]
        )
        text = render_state(merged)
        assert "ksp_queries_total 3" in text
        assert 'ksp_cache_entries{worker="111"} 5' in text
        assert 'ksp_cache_entries{worker="222"} 7' in text
        assert "# TYPE ksp_latency_seconds histogram" in text

    def test_merge_is_monotone_as_spools_grow(self):
        """The scrape-coherence property: spools only grow, so the
        merged counter sum can only grow, whichever worker answers."""
        young = registry_with(counter=1)
        old = registry_with(counter=5)
        first = merge_states([young.state(), old.state()])
        young.counter("ksp_queries_total").inc(3)
        second = merge_states([young.state(), old.state()])
        v1 = series(first, "ksp_queries_total")[0]["data"]["value"]
        v2 = series(second, "ksp_queries_total")[0]["data"]["value"]
        assert v2 >= v1
        assert (v1, v2) == (6.0, 9.0)


class TestLabelState:
    def test_labels_every_series_kind(self):
        state = registry_with(counter=1, gauge=2, observations=[0.5]).state()
        labeled = label_state(state, {"shard": "3"})
        for entry in labeled["series"]:
            assert ["shard", "3"] in entry["labels"]

    def test_existing_labels_are_not_overwritten(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"shard": "0"}).inc()
        labeled = label_state(registry.state(), {"shard": "9"})
        assert labeled["series"][0]["labels"] == [["shard", "0"]]

    def test_source_is_left_untouched(self):
        state = registry_with(counter=1).state()
        before = json.dumps(state, sort_keys=True)
        label_state(state, {"shard": "1"})
        assert json.dumps(state, sort_keys=True) == before

    def test_cross_fleet_merge_keeps_per_shard_attribution(self):
        """Distinct shards are partitions, not replicas: tagging each
        fleet's state ``shard=i`` before merging must keep the counters
        as separate series instead of summing them."""
        merged = merge_states(
            [
                label_state(registry_with(counter=3).state(), {"shard": "0"}),
                label_state(registry_with(counter=4).state(), {"shard": "1"}),
            ]
        )
        entries = series(merged, "ksp_queries_total")
        by_shard = {
            dict(entry["labels"])["shard"]: entry["data"]["value"]
            for entry in entries
        }
        assert by_shard == {"0": 3.0, "1": 4.0}


# ----------------------------------------------------------------------
# Load reports


def router_record(runtime=0.01, shards=()):
    return {"runtime_seconds": runtime, "outcome": "ok", "shards": list(shards)}


def shard_summary(index, pruned=False, timed_out=False, places=2, seconds=0.004):
    return {
        "shard": index,
        "pruned": pruned,
        "timed_out": timed_out,
        "places": places,
        "runtime_seconds": seconds,
        "request_id": "q#shard-%d" % index,
    }


class TestLoadReport:
    def test_per_shard_counts_and_fanout(self):
        records = [
            router_record(0.01, [shard_summary(0), shard_summary(1, pruned=True)]),
            router_record(0.02, [shard_summary(0), shard_summary(1)]),
        ]
        report = load_report(records, shard_count=3)
        assert report["queries"] == 2
        assert report["outcomes"] == {"ok": 2}
        assert report["fanout_mean"] == pytest.approx(1.5)
        shards = {entry["shard"]: entry for entry in report["shards"]}
        assert set(shards) == {0, 1, 2}  # shard 2 present with zeros
        assert shards[0]["routed"] == 2 and shards[0]["executed"] == 2
        assert shards[1]["pruned"] == 1 and shards[1]["executed"] == 1
        assert shards[2]["routed"] == 0
        assert shards[0]["places"] == 4
        assert shards[0]["subquery_seconds"] == pytest.approx(0.008)

    def test_latency_buckets_are_cumulative(self):
        report = load_report([router_record(0.004), router_record(10.0)])
        buckets = report["latency_buckets"]
        assert buckets["+Inf"] == 2
        values = list(buckets.values())
        assert values == sorted(values)  # cumulative => non-decreasing

    def test_single_engine_records_have_no_fanout(self):
        report = load_report([router_record(0.01)])
        assert report["fanout_buckets"] is None
        assert report["fanout_mean"] is None
        assert report["shards"] == []

    def test_timed_out_subqueries_are_counted(self):
        records = [router_record(0.5, [shard_summary(0, timed_out=True)])]
        report = load_report(records)
        assert report["shards"][0]["timed_out"] == 1

    def test_fanout_bounds_cover_small_fleets(self):
        assert FANOUT_BUCKETS[0] == 0.0
        assert FANOUT_BUCKETS[-1] >= 32.0
