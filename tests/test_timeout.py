"""The per-query timeout protocol (the paper's 120 s BSP abort)."""


import pytest

from repro.core.exhaustive import exhaustive_search
from repro.datagen import QueryGenerator, WorkloadConfig
from repro.spatial.geometry import Point


class TestTimeout:
    def test_bsp_times_out_and_flags(self, tiny_yago_engine):
        engine = tiny_yago_engine
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=5, seed=55)
        )
        query = generator.original()
        result = engine.query(query, method="bsp", timeout=0.0)
        assert result.stats.timed_out
        # A partial (possibly empty) result is still returned.
        assert result.stats.runtime_seconds >= 0

    def test_generous_timeout_not_triggered(self, example_engine):
        result = example_engine.query(
            Point(43.51, 4.75), ["ancient", "roman"], k=1, method="bsp",
            timeout=60.0,
        )
        assert not result.stats.timed_out
        assert len(result) == 1

    @pytest.mark.parametrize("method", ["bsp", "spp", "sp", "ta"])
    def test_all_methods_accept_timeout(self, example_engine, method):
        result = example_engine.query(
            Point(43.51, 4.75), ["ancient", "roman"], k=1, method=method,
            timeout=30.0,
        )
        assert len(result) == 1

    def test_exhaustive_timeout(self, tiny_yago_engine):
        engine = tiny_yago_engine
        generator = QueryGenerator(
            engine.graph, engine.inverted_index, WorkloadConfig(keyword_count=5, seed=56)
        )
        query = generator.original()
        result = exhaustive_search(
            engine.graph, engine.inverted_index, query, timeout=0.0
        )
        assert result.stats.timed_out
