"""Triple store: permutation indexes and pattern matching."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.terms import IRI, Literal, Triple
from repro.sparql.store import TripleStore

S = [IRI("http://x/s%d" % i) for i in range(4)]
P = [IRI("http://x/p%d" % i) for i in range(3)]
OBJ = [IRI("http://x/o%d" % i) for i in range(4)] + [Literal("lit")]

triples_strategy = st.lists(
    st.builds(
        Triple,
        st.sampled_from(S),
        st.sampled_from(P),
        st.sampled_from(OBJ),
    ),
    max_size=40,
)


def linear_match(triples, s=None, p=None, o=None):
    return {
        t
        for t in triples
        if (s is None or t.subject == s)
        and (p is None or t.predicate == p)
        and (o is None or t.object == o)
    }


class TestStore:
    def test_add_and_contains(self):
        triple = Triple(S[0], P[0], OBJ[0])
        store = TripleStore([triple])
        assert len(store) == 1
        assert triple in store
        assert Triple(S[0], P[0], OBJ[1]) not in store

    def test_duplicates_ignored(self):
        triple = Triple(S[0], P[0], OBJ[0])
        store = TripleStore([triple, triple])
        assert len(store) == 1

    def test_from_ntriples(self):
        store = TripleStore.from_ntriples(
            '<http://x/a> <http://x/p> "v" .\n<http://x/a> <http://x/q> <http://x/b> .\n'
        )
        assert len(store) == 2
        assert len(list(store.match(subject=IRI("http://x/a")))) == 2

    @given(triples_strategy)
    @settings(max_examples=40)
    def test_match_all_patterns_against_linear_scan(self, triples):
        store = TripleStore(triples)
        reference = set(triples)
        for s in [None, S[0], S[3]]:
            for p in [None, P[0]]:
                for o in [None, OBJ[0], OBJ[4]]:
                    assert set(store.match(s, p, o)) == linear_match(
                        reference, s, p, o
                    )

    @given(triples_strategy)
    @settings(max_examples=40)
    def test_cardinality_estimates_upper_bound(self, triples):
        store = TripleStore(triples)
        reference = set(triples)
        for s in [None, S[0]]:
            for p in [None, P[1]]:
                for o in [None, OBJ[2]]:
                    exact = len(linear_match(reference, s, p, o))
                    estimate = store.cardinality_estimate(s, p, o)
                    assert estimate >= exact
                    # Estimates are exact when at most one slot is free.
                    free = sum(1 for slot in (s, p, o) if slot is None)
                    if free <= 1:
                        assert estimate == exact

    def test_introspection(self):
        store = TripleStore([Triple(S[0], P[0], OBJ[0]), Triple(S[1], P[1], OBJ[0])])
        assert set(store.subjects()) == {S[0], S[1]}
        assert set(store.predicates()) == {P[0], P[1]}
        assert OBJ[0] in set(store.objects())
        assert len(list(store.triples())) == 2
