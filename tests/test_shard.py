"""Spatial sharding: partition/build invariants, scatter-gather merge
soundness (sharded top-k == unsharded top-k), routing-bound pruning,
degraded partial results, and the HTTP per-shard-fleet executor."""

from __future__ import annotations

import json
import random
import urllib.request

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.core.query import KSPQuery
from repro.core.stats import QueryStats
from repro.core.topk import TopKQueue
from repro.datagen.profiles import TINY_YAGO
from repro.datagen.synthetic import generate_graph
from repro.shard import (
    PlaceMaskedGraph,
    ShardRouter,
    build_shards,
    load_manifest,
    str_partition,
)
from repro.spatial.geometry import Point


def _place_terms(graph, limit=200):
    """Distinct document terms over the graph's places, sorted."""
    terms = set()
    for vertex, _ in graph.places():
        terms.update(graph.document(vertex))
        if len(terms) >= limit:
            break
    return sorted(terms)


def _bbox(graph):
    xs = [point.x for _, point in graph.places()]
    ys = [point.y for _, point in graph.places()]
    return min(xs), min(ys), max(xs), max(ys)


def _signature(result):
    return [(p.root, p.score, p.looseness) for p in result.places]


@pytest.fixture(scope="module")
def shard_setup(tmp_path_factory, tiny_yago_graph):
    config = EngineConfig(alpha=3)
    directory = tmp_path_factory.mktemp("shards-a3")
    manifest = build_shards(tiny_yago_graph, directory, 3, config=config)
    single = KSPEngine(tiny_yago_graph, config)
    router = ShardRouter(directory, config)
    return tiny_yago_graph, single, router, directory, manifest


# ---------------------------------------------------------------------------
# Partitioning


class TestPartition:
    def test_disjoint_and_covering(self):
        rng = random.Random(5)
        places = [
            (index, Point(rng.uniform(-50, 50), rng.uniform(-50, 50)))
            for index in range(137)
        ]
        tiles = str_partition(places, 6)
        assert len(tiles) == 6
        seen = [key for tile in tiles for key, _ in tile]
        assert sorted(seen) == list(range(137))  # every place exactly once
        sizes = [len(tile) for tile in tiles]
        assert max(sizes) - min(sizes) <= 2  # balanced

    def test_deterministic_under_input_order(self):
        rng = random.Random(6)
        places = [
            (index, Point(rng.uniform(0, 10), rng.uniform(0, 10)))
            for index in range(64)
        ]
        shuffled = list(places)
        rng.shuffle(shuffled)
        a = str_partition(places, 5)
        b = str_partition(shuffled, 5)
        assert [[key for key, _ in tile] for tile in a] == [
            [key for key, _ in tile] for tile in b
        ]

    def test_never_produces_empty_tiles(self):
        places = [(index, Point(float(index), 0.0)) for index in range(3)]
        tiles = str_partition(places, 8)  # more shards than places
        assert len(tiles) == 3
        assert all(tiles)


# ---------------------------------------------------------------------------
# Building


class TestBuild:
    def test_manifest_roundtrip(self, shard_setup):
        graph, _, _, directory, manifest = shard_setup
        loaded = load_manifest(directory)
        assert loaded == manifest
        assert loaded["shards"] == 3
        assert sum(e["places"] for e in loaded["entries"]) == graph.place_count()
        for entry in loaded["entries"]:
            min_x, min_y, max_x, max_y = entry["region"]
            assert min_x <= max_x and min_y <= max_y

    def test_masked_graph_hides_other_places_only(self, tiny_yago_graph):
        places = list(tiny_yago_graph.places())
        allowed = {vertex for vertex, _ in places[:10]}
        masked = PlaceMaskedGraph(tiny_yago_graph, allowed)
        assert masked.place_count() == len(allowed)
        assert masked.vertex_count == tiny_yago_graph.vertex_count
        assert masked.edge_count == tiny_yago_graph.edge_count
        hidden = places[10][0]
        assert tiny_yago_graph.location(hidden) is not None
        assert masked.location(hidden) is None
        assert not masked.is_place(hidden)
        # Documents and labels are the full graph's: shard-local BFS
        # scores must equal single-engine scores.
        assert masked.document(hidden) == tiny_yago_graph.document(hidden)

    def test_rejects_placeless_graph(self, tmp_path, tiny_yago_graph):
        masked = PlaceMaskedGraph(tiny_yago_graph, ())
        with pytest.raises(ValueError):
            build_shards(masked, tmp_path / "none", 2)

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path)


# ---------------------------------------------------------------------------
# Scatter-gather merge soundness (satellite: randomized agreement)


class TestAgreement:
    def test_randomized_sharded_equals_unsharded(self, shard_setup):
        graph, single, router, _, _ = shard_setup
        terms = _place_terms(graph)
        min_x, min_y, max_x, max_y = _bbox(graph)
        rng = random.Random(13)
        for trial in range(12):
            location = (
                rng.uniform(min_x, max_x),
                rng.uniform(min_y, max_y),
            )
            keywords = rng.sample(terms, rng.choice((1, 2, 3)))
            k = rng.choice((1, 3, 5, 8))
            method = rng.choice(("sp", "ta"))
            expected = single.query(location, keywords, k=k, method=method)
            merged = router.query(location, keywords, k=k, method=method)
            assert _signature(merged) == _signature(expected), (
                trial,
                location,
                keywords,
                k,
                method,
            )
            # Byte-identical wire top-k, not just matching signatures.
            e_dict = expected.to_dict()
            m_dict = merged.to_dict()
            assert json.dumps(m_dict["places"], sort_keys=True) == json.dumps(
                e_dict["places"], sort_keys=True
            )
            assert m_dict["scores"] == e_dict["scores"]
            assert m_dict["looseness"] == e_dict["looseness"]
            assert m_dict["timed_out"] is False

    def test_agreement_across_alpha(self, tmp_path_factory):
        graph = generate_graph(TINY_YAGO.scaled(600).with_seed(23))
        for alpha in (2, 3):
            config = EngineConfig(alpha=alpha)
            directory = tmp_path_factory.mktemp("shards-a%d" % alpha)
            build_shards(graph, directory, 4, config=config)
            single = KSPEngine(graph, config)
            router = ShardRouter(directory, config)
            terms = _place_terms(graph)
            rng = random.Random(alpha)
            for _ in range(4):
                location = (rng.uniform(-10, 30), rng.uniform(35, 70))
                keywords = rng.sample(terms, 2)
                k = rng.choice((2, 4))
                expected = single.query(location, keywords, k=k, method="sp")
                merged = router.query(location, keywords, k=k, method="sp")
                assert _signature(merged) == _signature(expected)

    def test_prebuilt_query_and_options_path(self, shard_setup):
        graph, single, router, _, _ = shard_setup
        terms = _place_terms(graph)
        query = KSPQuery.create(Point(5.0, 50.0), terms[:2], k=4)
        expected = single.query(query, method="sp")
        merged = router.query(query, method="sp")
        assert _signature(merged) == _signature(expected)
        assert merged.stats.algorithm == "SHARDED-SP"
        assert len(merged.stats.shards) == 3


# ---------------------------------------------------------------------------
# Routing bound (distributed Rule 4)


class TestRouting:
    def test_serial_router_prunes_far_shards(self, shard_setup):
        graph, single, router, directory, _ = shard_setup
        serial = ShardRouter(directory, EngineConfig(alpha=3), parallelism=1)
        # A query sitting exactly on a place that covers its own keyword:
        # the best score is ~0, so every other shard's root bound beats
        # theta and is pruned without executing.
        target = None
        for vertex, point in graph.places():
            document = graph.document(vertex)
            if document:
                target = (vertex, point, sorted(document)[0])
                break
        assert target is not None
        vertex, point, term = target
        result = serial.query((point.x, point.y), [term], k=1, method="sp")
        expected = single.query((point.x, point.y), [term], k=1, method="sp")
        assert _signature(result) == _signature(expected)
        executed = [s for s in result.stats.shards if not s["pruned"]]
        pruned = [s for s in result.stats.shards if s["pruned"]]
        assert len(executed) == 1
        assert len(pruned) == 2
        for shard in pruned:
            assert shard["places"] == 0

    def test_fanout_and_prune_counters_exported(self, shard_setup):
        _, _, router, _, _ = shard_setup
        text = router.metrics_text()
        assert "ksp_shard_fanout_total" in text
        assert "ksp_shards 3" in text

    def test_flight_recorder_carries_shard_spans(self, shard_setup):
        graph, _, router, _, _ = shard_setup
        terms = _place_terms(graph)
        router.query((0.0, 50.0), terms[:1], k=2, request_id="span-probe")
        [record] = router.flight_recorder.snapshot(limit=1)
        assert record["request_id"] == "span-probe"
        assert record["phases"]  # shard-N spans even without ?trace=1
        assert all(name.startswith("shard-") for name in record["phases"])


# ---------------------------------------------------------------------------
# Degradation (satellite: injected per-shard timeout)


class _TimedOutShard:
    """Stub engine: contributes a partial answer and a timeout flag."""

    def __init__(self, engine, keep=1):
        self._engine = engine
        self._keep = keep

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def query(self, *args, **kwargs):
        result = self._engine.query(*args, **kwargs)
        result.places = result.places[: self._keep]
        result.stats.timed_out = True
        return result


class TestDegradation:
    def test_injected_shard_timeout_partial_dominates(
        self, shard_setup, tmp_path_factory
    ):
        graph, single, _, directory, _ = shard_setup
        config = EngineConfig(alpha=3)
        router = ShardRouter(directory, config)
        # Query the victim's own region so its routing bound is ~0 and
        # it always executes — the timeout flag cannot be raced away by
        # a prune.
        victim = 1
        min_x, min_y, max_x, max_y = router.manifest["entries"][victim]["region"]
        location = ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
        router.engines[victim] = _TimedOutShard(router.engines[victim], keep=1)
        terms = _place_terms(graph)
        k = 6
        merged = router.query(location, terms[:2], k=k, method="sp")

        assert merged.stats.timed_out is True
        assert merged.incomplete
        flags = {s["shard"]: s["timed_out"] for s in merged.stats.shards}
        assert flags[victim] is True

        # No false entries above theta: every returned place is a real
        # place with its true single-engine score...
        full = single.query(location, terms[:2], k=50, method="sp")
        truth = {p.root: p.score for p in full.places}
        for place in merged.places:
            assert place.root in truth
            assert place.score == pytest.approx(truth[place.root])

        # ...and the surviving shards' contributions dominate: the merge
        # equals the exact top-k over (surviving shards + the partial).
        reference = TopKQueue(k)
        for index, engine in enumerate(router.engines):
            result = engine.query(location, terms[:2], k=k, method="sp")
            for place in result.places:
                reference.consider(place)
        assert _signature(merged) == [
            (p.root, p.score, p.looseness) for p in reference.ranked()
        ]

    def test_shard_exception_degrades_not_raises(self, shard_setup):
        graph, _, _, directory, _ = shard_setup

        class _Exploding:
            def __init__(self, engine):
                self._engine = engine

            def __getattr__(self, name):
                return getattr(self._engine, name)

            def query(self, *args, **kwargs):
                raise RuntimeError("shard process lost")

        router = ShardRouter(directory, EngineConfig(alpha=3))
        # Aim the query at the victim shard's own region: its routing
        # bound is ~0, so it always executes (never pruned) and the
        # injected crash must surface as degradation.
        victim = 2
        min_x, min_y, max_x, max_y = router.manifest["entries"][victim]["region"]
        location = ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)
        router.engines[victim] = _Exploding(router.engines[victim])
        terms = _place_terms(graph)
        merged = router.query(location, terms[:1], k=4, method="sp")
        assert merged.stats.timed_out is True
        record = merged.stats.shards[victim]
        assert record["timed_out"] is True
        assert "shard process lost" in record["error"]
        # The other shards still answered.
        assert merged.places


# ---------------------------------------------------------------------------
# HTTP executor: one fleet per shard


def _post_query(base_url, body):
    request = urllib.request.Request(
        base_url + "/v1/query",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


class TestHTTPExecutor:
    def test_http_fleet_agreement_and_kill_degradation(self, shard_setup):
        from repro.serve.server import KSPServer, ServeConfig

        graph, single, _, directory, manifest = shard_setup
        config = EngineConfig(alpha=3)
        servers = []
        try:
            for entry in manifest["entries"]:
                engine = KSPEngine.from_snapshot(
                    directory / entry["snapshot"], config
                )
                server = KSPServer(
                    engine=engine, config=ServeConfig(port=0, workers=2)
                ).start()
                servers.append(server)
            urls = [server.url for server in servers]
            router = ShardRouter(directory, config, shard_urls=urls)
            terms = _place_terms(graph)

            expected = single.query((2.0, 48.0), terms[:2], k=5, method="sp")
            merged = router.query(
                (2.0, 48.0), terms[:2], k=5, method="sp", timeout=10.0
            )
            assert _signature(merged) == _signature(expected)
            assert merged.stats.timed_out is False

            # Kill one shard fleet: the router degrades to a flagged
            # partial answer, never an exception.
            victim = 0
            servers[victim].stop()
            degraded = router.query(
                (2.0, 48.0), terms[:2], k=5, method="sp", timeout=10.0
            )
            assert degraded.stats.timed_out is True
            assert degraded.stats.shards[victim]["timed_out"] is True
            assert degraded.stats.shards[victim]["error"]
            truth = {p.root: p.score for p in expected.places}
            for place in degraded.places:  # no fabricated entries
                if place.root in truth:
                    assert place.score == pytest.approx(truth[place.root])
        finally:
            for server in servers:
                server.stop()


# ---------------------------------------------------------------------------
# The router behind the serving stack


class TestServedRouter:
    def test_router_duck_types_the_engine_for_kspserver(self, shard_setup):
        from repro.serve.server import KSPServer, ServeConfig

        graph, single, router, _, _ = shard_setup
        terms = _place_terms(graph)
        server = KSPServer(engine=router, config=ServeConfig(port=0)).start()
        try:
            body = {
                "location": [1.0, 52.0],
                "keywords": terms[:2],
                "k": 3,
                "method": "sp",
            }
            wire = _post_query(server.url, body)
            expected = single.query((1.0, 52.0), terms[:2], k=3, method="sp")
            assert wire["scores"] == [p.score for p in expected.places]
            assert [s["shard"] for s in wire["stats"]["shards"]] == [0, 1, 2]
            with urllib.request.urlopen(
                server.url + "/v1/metrics", timeout=10
            ) as response:
                metrics = response.read().decode("utf-8")
            assert "ksp_shard_fanout_total" in metrics
            with urllib.request.urlopen(
                server.url + "/v1/debug/engine", timeout=10
            ) as response:
                debug = json.loads(response.read().decode("utf-8"))
            assert debug["manifest_hash"] == router.manifest_hash
            assert len(debug["shards"]) == 3
        finally:
            server.stop()

    def test_merged_stats_from_dict_roundtrip(self, shard_setup):
        graph, _, router, _, _ = shard_setup
        terms = _place_terms(graph)
        merged = router.query((0.0, 50.0), terms[:1], k=2)
        rebuilt = QueryStats.from_dict(merged.stats.as_dict())
        assert rebuilt.shards == merged.stats.shards
        assert rebuilt.algorithm == merged.stats.algorithm
        # Single-engine stats keep the pinned wire shape: no shards key.
        assert "shards" not in QueryStats().as_dict()


class TestSubRequestIds:
    def test_shard_stats_carry_sub_request_ids(self, shard_setup):
        graph, _, router, _, _ = shard_setup
        terms = _place_terms(graph)
        merged = router.query(
            (1.0, 52.0), terms[:2], k=3, method="sp", request_id="rid-7"
        )
        for summary in merged.stats.shards:
            assert summary["request_id"] == "rid-7#shard-%d" % summary["shard"]

    def test_no_request_id_means_no_sub_ids(self, shard_setup):
        graph, _, router, _, _ = shard_setup
        terms = _place_terms(graph)
        merged = router.query((1.0, 52.0), terms[:2], k=3, method="sp")
        for summary in merged.stats.shards:
            assert summary["request_id"] is None

    def test_traced_router_query_collects_subtraces(self, shard_setup):
        graph, _, router, _, _ = shard_setup
        terms = _place_terms(graph)
        merged = router.query(
            (1.0, 52.0), terms[:2], k=3, method="sp",
            trace=True, request_id="rid-8",
        )
        assert merged.subtraces, "traced scatter should collect shard docs"
        labels = [entry["label"] for entry in merged.subtraces]
        assert labels == sorted(labels)
        executed = {
            "shard-%d" % s["shard"]
            for s in merged.stats.shards
            if not s["pruned"] and not s["timed_out"]
        }
        assert set(labels) == executed
        for entry in merged.subtraces:
            assert entry["document"]["traceEvents"]
            assert entry["os_pid"] is not None
            assert entry["offset_seconds"] >= 0.0
        # subtraces are router-side only, never part of the wire schema
        assert "subtraces" not in merged.to_dict()
