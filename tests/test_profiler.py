"""The sampling profiler: both capture engines, the safety contract
(one profile per process, capped parameters, sampler self-exclusion)
and the ``GET /v1/debug/profile`` endpoint.
"""

import threading
import time

import pytest

from repro.obs.profiler import (
    DEFAULT_HZ,
    MAX_HZ,
    MAX_SECONDS,
    ProfileReport,
    ProfilerBusy,
    ProfilerError,
    SamplingProfiler,
)

from tests.test_debug_endpoints import serving
from tests.test_serve import request


def busy_worker(stop):
    """A recognizable CPU burner the profiler should catch."""
    while not stop.is_set():
        sum(i * i for i in range(500))


@pytest.fixture
def worker():
    stop = threading.Event()
    thread = threading.Thread(
        target=busy_worker, args=(stop,), name="busy-worker", daemon=True
    )
    thread.start()
    try:
        yield thread
    finally:
        stop.set()
        thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# Capture engines


class TestThreadEngine:
    def test_captures_the_busy_worker(self, worker):
        profiler = SamplingProfiler()  # never installed -> thread engine
        report = profiler.profile(seconds=0.3, hz=50)
        assert report.engine == "thread"
        assert report.samples > 0
        assert "busy-worker" in report.collapsed()

    def test_sampler_thread_excludes_itself(self, worker):
        report = SamplingProfiler().profile(seconds=0.2, hz=50)
        assert "ksp-profiler" not in report.collapsed()


class TestSignalEngine:
    def test_install_profile_uninstall(self, worker):
        profiler = SamplingProfiler()
        assert profiler.install()  # tests run on the main thread
        try:
            assert profiler.install()  # idempotent
            report = profiler.profile(seconds=0.3, hz=50)
            assert report.engine == "signal"
            assert report.samples > 0
            assert "busy-worker" in report.collapsed()
        finally:
            profiler.uninstall()
        assert not profiler.installed

    def test_install_from_a_worker_thread_falls_back(self):
        profiler = SamplingProfiler()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(profiler.install())
        )
        thread.start()
        thread.join()
        assert results == [False]
        assert not profiler.installed


# ----------------------------------------------------------------------
# Safety contract


class TestSafety:
    @pytest.mark.parametrize(
        "seconds,hz",
        [
            (0.0, DEFAULT_HZ),
            (-1.0, DEFAULT_HZ),
            (MAX_SECONDS + 1, DEFAULT_HZ),
            (1.0, 0.0),
            (1.0, MAX_HZ + 1),
        ],
    )
    def test_out_of_range_parameters_raise(self, seconds, hz):
        with pytest.raises(ProfilerError):
            SamplingProfiler().profile(seconds=seconds, hz=hz)

    def test_second_concurrent_profile_is_rejected(self):
        profiler = SamplingProfiler()
        errors = []

        def _second():
            time.sleep(0.05)
            try:
                profiler.profile(seconds=0.1, hz=10)
            except ProfilerBusy as exc:
                errors.append(exc)

        racer = threading.Thread(target=_second)
        racer.start()
        profiler.profile(seconds=0.4, hz=10)
        racer.join()
        assert len(errors) == 1
        # ... and the lock is released afterwards:
        profiler.profile(seconds=0.05, hz=10)


# ----------------------------------------------------------------------
# Report formats


class TestReport:
    def make_report(self):
        stacks = {
            (("a.py:main:1", "a.py:hot:9"), "MainThread"): 7,
            (("a.py:main:1",), "MainThread"): 3,
        }
        return ProfileReport(
            stacks=stacks, samples=10, seconds=1.0, hz=10, engine="thread"
        )

    def test_collapsed_is_flamegraph_format(self):
        lines = self.make_report().collapsed().splitlines()
        assert lines[0] == "MainThread;a.py:main:1;a.py:hot:9 7"
        assert lines[1] == "MainThread;a.py:main:1 3"

    def test_top_ranks_by_self_time_with_totals(self):
        top = self.make_report().top(5)
        assert top[0]["frame"] == "a.py:hot:9"
        assert top[0]["self"] == 7
        assert top[0]["total"] == 7
        assert top[0]["self_fraction"] == pytest.approx(0.7)
        by_frame = {entry["frame"]: entry for entry in top}
        assert by_frame["a.py:main:1"]["self"] == 3
        assert by_frame["a.py:main:1"]["total"] == 10  # on every stack

    def test_as_dict_is_the_endpoint_body(self):
        body = self.make_report().as_dict(top_n=1)
        assert body["engine"] == "thread"
        assert body["samples"] == 10
        assert body["distinct_stacks"] == 2
        assert len(body["top"]) == 1
        assert body["collapsed"].endswith("\n")


# ----------------------------------------------------------------------
# GET /v1/debug/profile


class TestProfileEndpoint:
    def test_profile_returns_collapsed_stacks(self, worker):
        with serving() as (server, _engine):
            status, body, _ = request(
                server.port,
                "GET",
                "/v1/debug/profile?seconds=0.3&hz=50",
                timeout=30.0,
            )
            assert status == 200
            assert body["samples"] > 0
            assert body["collapsed"].strip()
            assert body["distinct_stacks"] >= 1
            assert isinstance(body["top"], list)

    def test_bad_parameters_are_400(self):
        with serving() as (server, _engine):
            status, body, _ = request(
                server.port, "GET", "/v1/debug/profile?seconds=0"
            )
            assert status == 400
            status, body, _ = request(
                server.port, "GET", "/v1/debug/profile?seconds=1&hz=100000"
            )
            assert status == 400

    def test_concurrent_profile_is_409(self):
        with serving() as (server, _engine):
            first = {}

            def _long():
                first["response"] = request(
                    server.port,
                    "GET",
                    "/v1/debug/profile?seconds=1.5&hz=10",
                    timeout=30.0,
                )

            runner = threading.Thread(target=_long)
            runner.start()
            time.sleep(0.3)
            status, body, _ = request(
                server.port, "GET", "/v1/debug/profile?seconds=0.2"
            )
            runner.join()
            assert status == 409
            assert first["response"][0] == 200


class TestFrameLabels:
    def test_none_lineno_falls_back_to_first_line(self):
        """Synthesized frames (exec'd kernels sampled between line
        events) report ``f_lineno`` None; the label must not crash."""
        from repro.obs.profiler import _frame_label

        class FakeCode:
            co_filename = "/site/repro/rdf/csr.py"
            co_name = "csr_tightest"
            co_firstlineno = 41

        class FakeFrame:
            f_code = FakeCode()
            f_lineno = None

        assert _frame_label(FakeFrame()) == "rdf/csr.py:csr_tightest:41"
