"""The frozen public API surface: ``EngineConfig`` / ``QueryOptions``.

The historic kwarg spellings (``KSPEngine(graph, alpha=2)``, ``run()``,
``query_batch(..., method=...)``) were removed after their deprecation
cycle; unknown kwargs now fail like any other bad argument.
"""

import dataclasses

import pytest

from repro.core.config import EngineConfig, QueryOptions
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph


class TestEngineConfig:
    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.alpha = 5  # repro-lint: allow[RL003] asserts the mutation raises

    def test_replace_returns_new_instance(self):
        base = EngineConfig()
        changed = base.replace(alpha=7, undirected=True)
        assert (changed.alpha, changed.undirected) == (7, True)
        assert (base.alpha, base.undirected) == (3, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(alpha=-1)
        with pytest.raises(ValueError):
            EngineConfig(rtree_max_entries=1)
        with pytest.raises(ValueError):
            EngineConfig(reach_method="magic")
        with pytest.raises(ValueError):
            EngineConfig(tqsp_cache_size=-1)
        with pytest.raises(ValueError):
            EngineConfig(workers=0)

    def test_engine_reads_config(self):
        engine = KSPEngine(
            build_example_graph(), EngineConfig(alpha=2, undirected=True)
        )
        assert engine.config.alpha == 2
        assert engine.alpha == 2  # back-compat attribute mirrors config
        assert engine.undirected is True


class TestLegacyKwargsRemoved:
    def test_constructor_rejects_historic_kwargs(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            KSPEngine(build_example_graph(), alpha=2)

    def test_run_alias_is_gone(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=2))
        assert not hasattr(engine, "run")

    def test_query_batch_rejects_method_kwarg(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=2))
        from repro.core.query import KSPQuery

        queries = [KSPQuery(location=Q1, keywords=EXAMPLE_KEYWORDS, k=1)]
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.query_batch(queries, workers=1, method="bsp")
        report = engine.query_batch(
            queries, workers=1, options=QueryOptions(method="bsp")
        )
        assert len(report.results) == 1
        assert report.method == "bsp"

    def test_cursor_rejects_timeout_kwarg(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.cursor(Q1, EXAMPLE_KEYWORDS, timeout=30.0)
        cursor = engine.cursor(
            Q1, EXAMPLE_KEYWORDS, options=QueryOptions(timeout=30.0)
        )
        assert cursor.take(1)


class TestQueryOptions:
    def test_frozen_defaults(self):
        options = QueryOptions()
        assert (options.k, options.method, options.timeout) == (5, None, None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.k = 9  # repro-lint: allow[RL003] asserts the mutation raises

    def test_replace(self):
        options = QueryOptions().replace(method="bsp", request_id="r1")
        assert (options.method, options.request_id) == ("bsp", "r1")

    def test_options_flow_through_query(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        result = engine.query(
            Q1,
            EXAMPLE_KEYWORDS,
            options=QueryOptions(k=1, method="bsp", request_id="opt-1"),
        )
        assert len(result) == 1
        assert result.stats.algorithm == "BSP"
        assert result.request_id == "opt-1"

    def test_kwargs_override_options(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, options=QueryOptions(k=1, method="sp")
        )
        assert len(result) == 2
