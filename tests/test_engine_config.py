"""The frozen public API surface: ``EngineConfig`` / ``QueryOptions``
and the deprecation shim that keeps the historic kwargs working.
"""

import dataclasses

import pytest

from repro.core.config import EngineConfig, QueryOptions, fold_legacy_kwargs
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph


class TestEngineConfig:
    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.alpha = 5  # repro-lint: allow[RL003] asserts the mutation raises

    def test_replace_returns_new_instance(self):
        base = EngineConfig()
        changed = base.replace(alpha=7, undirected=True)
        assert (changed.alpha, changed.undirected) == (7, True)
        assert (base.alpha, base.undirected) == (3, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(alpha=-1)
        with pytest.raises(ValueError):
            EngineConfig(rtree_max_entries=1)
        with pytest.raises(ValueError):
            EngineConfig(reach_method="magic")
        with pytest.raises(ValueError):
            EngineConfig(tqsp_cache_size=-1)
        with pytest.raises(ValueError):
            EngineConfig(workers=0)

    def test_engine_reads_config(self):
        engine = KSPEngine(
            build_example_graph(), EngineConfig(alpha=2, undirected=True)
        )
        assert engine.config.alpha == 2
        assert engine.alpha == 2  # back-compat attribute mirrors config
        assert engine.undirected is True


class TestLegacyKwargShim:
    def test_constructor_kwargs_warn_and_still_work(self):
        graph = build_example_graph()
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            legacy = KSPEngine(graph, alpha=2, undirected=True)
        modern = KSPEngine(graph, EngineConfig(alpha=2, undirected=True))
        assert legacy.config == modern.config
        assert legacy.query(Q1, EXAMPLE_KEYWORDS, k=2).scores() == modern.query(
            Q1, EXAMPLE_KEYWORDS, k=2
        ).scores()

    def test_from_triples_kwargs_warn(self):
        from repro.datagen.synthetic import graph_to_triples

        triples = list(graph_to_triples(build_example_graph()))
        with pytest.warns(DeprecationWarning):
            engine = KSPEngine.from_triples(triples, alpha=2)
        assert engine.config.alpha == 2

    def test_query_batch_method_kwarg_warns(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=2))
        from repro.core.query import KSPQuery

        queries = [KSPQuery(location=Q1, keywords=EXAMPLE_KEYWORDS, k=1)]
        with pytest.warns(DeprecationWarning, match="QueryOptions"):
            report = engine.query_batch(queries, workers=1, method="bsp")
        assert len(report.results) == 1
        assert report.method == "bsp"

    def test_cursor_legacy_kwargs_warn(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        with pytest.warns(DeprecationWarning):
            cursor = engine.cursor(Q1, EXAMPLE_KEYWORDS, timeout=30.0)
        assert cursor.take(1)

    def test_unknown_kwarg_is_a_type_error_not_a_warning(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            KSPEngine(build_example_graph(), alpa=2)  # typo must not warn

    def test_fold_requires_no_legacy_to_stay_silent(self):
        config = EngineConfig()
        assert fold_legacy_kwargs("x", config, {}, "config=...") is config


class TestQueryOptions:
    def test_frozen_defaults(self):
        options = QueryOptions()
        assert (options.k, options.method, options.timeout) == (5, None, None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.k = 9  # repro-lint: allow[RL003] asserts the mutation raises

    def test_replace(self):
        options = QueryOptions().replace(method="bsp", request_id="r1")
        assert (options.method, options.request_id) == ("bsp", "r1")

    def test_options_flow_through_query(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        result = engine.query(
            Q1,
            EXAMPLE_KEYWORDS,
            options=QueryOptions(k=1, method="bsp", request_id="opt-1"),
        )
        assert len(result) == 1
        assert result.stats.algorithm == "BSP"
        assert result.request_id == "opt-1"

    def test_kwargs_override_options(self):
        engine = KSPEngine(build_example_graph(), EngineConfig(alpha=3))
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, options=QueryOptions(k=1, method="sp")
        )
        assert len(result) == 2
