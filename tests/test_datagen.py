"""Synthetic data generators: corpora, query workloads, sampling."""

import math

import pytest

from repro.datagen.profiles import DBPEDIA_LIKE, TINY_DBPEDIA, TINY_YAGO, YAGO_LIKE, DatasetProfile
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.datagen.sampling import induced_subgraph, random_jump_sample
from repro.datagen.synthetic import generate_graph, graph_to_triples
from repro.rdf.documents import graph_from_triples
from repro.text.inverted import InvertedIndex


class TestProfiles:
    def test_vocabulary_derived_from_posting_target(self):
        profile = DBPEDIA_LIKE
        rare = profile.vertex_count * profile.rare_term_fraction
        postings = profile.vertex_count * profile.avg_document_length + rare
        expected = postings / profile.target_posting_length - rare
        assert profile.vocabulary_size == pytest.approx(expected, rel=0.01)

    def test_scaled_keeps_shape(self):
        scaled = YAGO_LIKE.scaled(5000)
        assert scaled.vertex_count == 5000
        assert scaled.place_fraction == YAGO_LIKE.place_fraction
        assert scaled.name == "yago-like-5000"

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetProfile(
                name="bad", vertex_count=5, avg_out_degree=1,
                place_fraction=0.5, avg_document_length=2,
                target_posting_length=2,
            )
        with pytest.raises(ValueError):
            DatasetProfile(
                name="bad", vertex_count=100, avg_out_degree=1,
                place_fraction=0.0, avg_document_length=2,
                target_posting_length=2,
            )


class TestGenerator:
    def test_deterministic(self):
        a = generate_graph(TINY_YAGO)
        b = generate_graph(TINY_YAGO)
        assert a.vertex_count == b.vertex_count
        assert a.edge_count == b.edge_count
        assert list(a.edges()) == list(b.edges())
        assert a.document(0) == b.document(0)

    def test_seed_changes_output(self):
        a = generate_graph(TINY_YAGO)
        b = generate_graph(TINY_YAGO.with_seed(999))
        assert list(a.edges()) != list(b.edges())

    def test_place_fraction_honored(self, tiny_yago_graph):
        fraction = tiny_yago_graph.place_count() / tiny_yago_graph.vertex_count
        assert fraction == pytest.approx(TINY_YAGO.place_fraction, abs=0.01)

    def test_single_weak_component(self, tiny_dbpedia_graph):
        components = tiny_dbpedia_graph.weakly_connected_components()
        assert len(components) == 1

    def test_posting_length_near_target(self, tiny_dbpedia_graph):
        index = InvertedIndex.build(tiny_dbpedia_graph)
        # Zipf + dedup pulls it below the target; same order of magnitude.
        assert index.average_posting_length() > 0.5 * TINY_DBPEDIA.target_posting_length

    def test_places_inside_bbox(self, tiny_yago_graph):
        min_x, min_y, max_x, max_y = TINY_YAGO.bbox
        for _, location in tiny_yago_graph.places():
            assert min_x <= location.x <= max_x
            assert min_y <= location.y <= max_y

    def test_yago_profile_has_more_places_than_dbpedia(
        self, tiny_yago_graph, tiny_dbpedia_graph
    ):
        assert tiny_yago_graph.place_count() > tiny_dbpedia_graph.place_count()


class TestTripleExport:
    def test_round_trip_preserves_structure(self, tiny_yago_graph):
        small = induced_subgraph(tiny_yago_graph, list(range(150)))
        rebuilt = graph_from_triples(graph_to_triples(small))
        assert rebuilt.vertex_count == small.vertex_count
        assert rebuilt.place_count() == small.place_count()
        for vertex in small.vertices():
            label = small.label(vertex)
            # URI local names and predicate descriptions add tokens, so the
            # rebuilt documents are supersets of the originals.
            rebuilt_vertex = rebuilt.vertex_by_label(
                "http://repro.example.org/entity/" + label
            )
            assert small.document(vertex) <= rebuilt.document(rebuilt_vertex)
            original = small.location(vertex)
            assert rebuilt.location(rebuilt_vertex) == original

    def test_edges_preserved(self, tiny_yago_graph):
        small = induced_subgraph(tiny_yago_graph, list(range(100)))
        rebuilt = graph_from_triples(graph_to_triples(small))
        assert rebuilt.edge_count == small.edge_count


class TestQueryGenerator:
    @pytest.fixture(scope="class")
    def generator(self, tiny_yago_graph):
        index = InvertedIndex.build(tiny_yago_graph)
        config = WorkloadConfig(keyword_count=3, k=5, seed=7,
                                min_hops=2, max_term_frequency=40)
        return QueryGenerator(tiny_yago_graph, index, config), index

    def test_original_queries_valid(self, generator):
        gen, index = generator
        for query in gen.workload(10, "O"):
            assert len(query.keywords) == 3
            assert query.k == 5
            for term in query.keywords:
                assert index.document_frequency(term) > 0

    def test_original_deterministic(self, tiny_yago_graph):
        index = InvertedIndex.build(tiny_yago_graph)
        config = WorkloadConfig(keyword_count=3, seed=9)
        a = QueryGenerator(tiny_yago_graph, index, config).workload(5, "O")
        b = QueryGenerator(tiny_yago_graph, index, config).workload(5, "O")
        assert [q.keywords for q in a] == [q.keywords for q in b]
        assert [q.location for q in a] == [q.location for q in b]

    def test_sdll_keywords_are_infrequent(self, generator):
        gen, index = generator
        for query in gen.workload(4, "SDLL"):
            for term in query.keywords:
                frequency = index.document_frequency(term)
                assert 0 < frequency < gen.config.max_term_frequency

    def test_ldll_locations_displaced(self, tiny_yago_graph, generator):
        gen, _ = generator
        min_x, min_y, max_x, max_y = TINY_YAGO.bbox
        for query in gen.workload(4, "LDLL"):
            # +90 degrees of longitude pushes far outside the bbox.
            assert query.location.y > max_y + 10

    def test_sdll_locations_near_places(self, tiny_yago_graph, generator):
        gen, _ = generator
        for query in gen.workload(4, "SDLL"):
            nearest = min(
                query.location.distance_to(location)
                for _, location in tiny_yago_graph.places()
            )
            assert nearest <= 2 * gen.config.sdll_range * math.sqrt(2)

    def test_unknown_class_rejected(self, generator):
        gen, _ = generator
        with pytest.raises(ValueError):
            gen.workload(1, "XXL")

    def test_graph_without_places_rejected(self):
        from repro.rdf.graph import RDFGraph

        graph = RDFGraph()
        graph.add_vertex("a", document={"x"})
        index = InvertedIndex.build(graph)
        with pytest.raises(ValueError):
            QueryGenerator(graph, index)


class TestSampling:
    def test_sample_size(self, tiny_yago_graph):
        sample = random_jump_sample(tiny_yago_graph, 300, seed=1)
        assert sample.vertex_count == 300

    def test_sample_preserves_attributes(self, tiny_yago_graph):
        sample = random_jump_sample(tiny_yago_graph, 200, seed=2)
        for vertex in sample.vertices():
            original = tiny_yago_graph.vertex_by_label(sample.label(vertex))
            assert sample.document(vertex) == tiny_yago_graph.document(original)
            assert sample.location(vertex) == tiny_yago_graph.location(original)

    def test_sample_edges_induced(self, tiny_yago_graph):
        sample = random_jump_sample(tiny_yago_graph, 200, seed=3)
        for source, target in sample.edges():
            original_source = tiny_yago_graph.vertex_by_label(sample.label(source))
            original_target = tiny_yago_graph.vertex_by_label(sample.label(target))
            assert original_target in tiny_yago_graph.out_neighbors(original_source)

    def test_target_larger_than_graph(self, tiny_yago_graph):
        sample = random_jump_sample(tiny_yago_graph, 10**6, seed=4)
        assert sample.vertex_count == tiny_yago_graph.vertex_count

    def test_invalid_target(self, tiny_yago_graph):
        with pytest.raises(ValueError):
            random_jump_sample(tiny_yago_graph, 0)

    def test_deterministic(self, tiny_yago_graph):
        a = random_jump_sample(tiny_yago_graph, 150, seed=5)
        b = random_jump_sample(tiny_yago_graph, 150, seed=5)
        assert [a.label(v) for v in a.vertices()] == [
            b.label(v) for v in b.vertices()
        ]
