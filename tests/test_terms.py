"""RDF term value objects."""

import pytest

from repro.rdf.terms import IRI, BlankNode, Literal, Triple


class TestIRI:
    def test_local_name_fragment(self):
        assert IRI("http://ex.org/onto#birthPlace").local_name() == "birthPlace"

    def test_local_name_path(self):
        assert IRI("http://ex.org/resource/Saint_Peter").local_name() == "Saint_Peter"

    def test_local_name_plain(self):
        assert IRI("just_a_name").local_name() == "just_a_name"

    def test_local_name_prefers_fragment_over_path(self):
        assert IRI("http://ex.org/res/Thing#part").local_name() == "part"

    def test_str(self):
        assert str(IRI("http://x")) == "<http://x>"


class TestLiteral:
    def test_plain(self):
        assert str(Literal("hello")) == '"hello"'

    def test_language_tag(self):
        assert str(Literal("bonjour", language="fr")) == '"bonjour"@fr'

    def test_datatype(self):
        literal = Literal("42", datatype=IRI("http://www.w3.org/2001/XMLSchema#int"))
        assert str(literal) == '"42"^^<http://www.w3.org/2001/XMLSchema#int>'

    def test_language_and_datatype_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=IRI("http://t"))

    def test_escaping(self):
        literal = Literal('say "hi"\n\tok\\')
        assert str(literal) == '"say \\"hi\\"\\n\\tok\\\\"'


class TestTriple:
    def test_str_round(self):
        triple = Triple(
            IRI("http://s"), IRI("http://p"), Literal("o", language="en")
        )
        assert str(triple) == '<http://s> <http://p> "o"@en .'

    def test_blank_node_subject(self):
        triple = Triple(BlankNode("b1"), IRI("http://p"), IRI("http://o"))
        assert str(triple) == "_:b1 <http://p> <http://o> ."

    def test_equality_and_hash(self):
        a = Triple(IRI("s"), IRI("p"), IRI("o"))
        b = Triple(IRI("s"), IRI("p"), IRI("o"))
        assert a == b
        assert hash(a) == hash(b)
