"""Inverted index: in-memory, disk-resident, query map, keyword ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import RDFGraph
from repro.text.inverted import (
    DiskInvertedIndex,
    InvertedIndex,
    build_query_map,
    order_rarest_first,
)

terms = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])
documents = st.lists(st.frozensets(terms, max_size=4), min_size=0, max_size=30)


def index_from_documents(docs):
    index = InvertedIndex()
    for vertex, doc in enumerate(docs):
        index.add_document(vertex, doc)
    index.finalize()
    return index


class TestInvertedIndex:
    def test_build_from_graph(self):
        graph = RDFGraph()
        a = graph.add_vertex("a", document={"x", "y"})
        b = graph.add_vertex("b", document={"y"})
        index = InvertedIndex.build(graph)
        assert list(index.posting("x")) == [a]
        assert list(index.posting("y")) == sorted([a, b])
        assert index.posting("zzz") == []

    def test_document_frequency(self):
        index = index_from_documents([{"x"}, {"x", "y"}, {"y"}])
        assert index.document_frequency("x") == 2
        assert index.document_frequency("y") == 2
        assert index.document_frequency("nope") == 0

    def test_contains(self):
        index = index_from_documents([{"x"}])
        assert "x" in index
        assert "y" not in index

    def test_query_before_finalize_rejected(self):
        index = InvertedIndex()
        index.add_document(0, {"x"})
        with pytest.raises(RuntimeError):
            index.posting("x")

    def test_add_after_finalize_rejected(self):
        index = index_from_documents([{"x"}])
        with pytest.raises(RuntimeError):
            index.add_document(1, {"y"})

    def test_average_posting_length(self):
        index = index_from_documents([{"x", "y"}, {"x"}])
        # postings: x->2, y->1; average 1.5
        assert index.average_posting_length() == pytest.approx(1.5)
        assert index_from_documents([]).average_posting_length() == 0.0

    def test_duplicate_adds_deduplicated(self):
        index = InvertedIndex()
        index.add_document(0, {"x"})
        index.add_document(0, {"x"})
        index.finalize()
        assert list(index.posting("x")) == [0]

    @given(documents)
    @settings(max_examples=40)
    def test_postings_sorted_and_complete(self, docs):
        index = index_from_documents(docs)
        for term in index.vocabulary():
            posting = list(index.posting(term))
            assert posting == sorted(set(posting))
            expected = [v for v, doc in enumerate(docs) if term in doc]
            assert posting == expected


class TestDiskIndex:
    def test_round_trip(self, tmp_path):
        index = index_from_documents([{"x", "y"}, {"y"}, {"x", "z"}])
        path = tmp_path / "index.bin"
        index.save(path)
        with DiskInvertedIndex(path) as disk:
            assert list(disk.posting("x")) == list(index.posting("x"))
            assert list(disk.posting("y")) == list(index.posting("y"))
            assert disk.posting("absent") == []
            assert disk.document_frequency("z") == 1
            assert disk.vocabulary_size() == index.vocabulary_size()
            assert disk.average_posting_length() == pytest.approx(
                index.average_posting_length()
            )
            assert disk.size_bytes() == path.stat().st_size
            assert disk.reads == 2  # "absent" does not touch the file

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not an index")
        with pytest.raises(ValueError):
            DiskInvertedIndex(path)

    @given(docs=documents)
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, docs, tmp_path_factory):
        index = index_from_documents(docs)
        path = tmp_path_factory.mktemp("idx") / "index.bin"
        index.save(path)
        with DiskInvertedIndex(path) as disk:
            for term in index.vocabulary():
                assert list(disk.posting(term)) == list(index.posting(term))


class TestQueryMap:
    def test_matches_table_2_shape(self):
        # M_{q.psi} maps each vertex to the query keywords it contains.
        index = index_from_documents([{"alpha", "beta"}, {"beta"}, {"gamma"}])
        query_map = build_query_map(index, ["alpha", "beta"])
        assert query_map == {
            0: frozenset({"alpha", "beta"}),
            1: frozenset({"beta"}),
        }

    def test_unknown_keyword_ignored(self):
        index = index_from_documents([{"alpha"}])
        assert build_query_map(index, ["nope"]) == {}


class TestRarestFirst:
    def test_orders_by_document_frequency(self):
        index = index_from_documents(
            [{"common"}, {"common"}, {"common", "rare"}, {"mid"}, {"mid"}]
        )
        assert order_rarest_first(index, ["common", "mid", "rare"]) == [
            "rare",
            "mid",
            "common",
        ]

    def test_ties_broken_lexicographically(self):
        index = index_from_documents([{"bb", "aa"}])
        assert order_rarest_first(index, ["bb", "aa"]) == ["aa", "bb"]
