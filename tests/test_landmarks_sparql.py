"""Integration: the SPARQL engine over the landmarks demo corpus.

Exercises the structured-access path on the same data the kSP engine
serves — the two access models the paper contrasts."""

import pytest

from repro.datagen.landmarks import generate_landmark_triples
from repro.sparql.ast import Variable
from repro.sparql.eval import QueryEngine
from repro.sparql.store import TripleStore


@pytest.fixture(scope="module")
def engine():
    store = TripleStore(generate_landmark_triples(landmarks_per_city=3, seed=5))
    return QueryEngine(store)


class TestStructuredAccess:
    def test_landmarks_of_a_city(self, engine):
        rows = engine.select(
            """
            PREFIX o: <http://landmarks.example.org/ontology/>
            PREFIX r: <http://landmarks.example.org/resource/>
            SELECT ?lm WHERE { ?lm o:locatedIn r:Arles . }
            """
        )
        assert len(rows) == 3
        for row in rows:
            assert row[Variable("lm")].value.rsplit("/", 1)[-1].startswith("Arles_")

    def test_style_join(self, engine):
        rows = engine.select(
            """
            PREFIX o: <http://landmarks.example.org/ontology/>
            SELECT DISTINCT ?style WHERE {
              ?lm o:architecturalStyle ?style .
            }
            """
        )
        # Every style IRI actually used by some landmark.
        assert 1 <= len(rows) <= 6

    def test_spatial_filter_near_provence(self, engine):
        rows = engine.select(
            """
            PREFIX o: <http://landmarks.example.org/ontology/>
            SELECT DISTINCT ?lm WHERE {
              ?lm o:locatedIn ?city .
              FILTER(DISTANCE(?lm, 43.68, 4.63) < 0.5)
            }
            """
        )
        assert rows
        for row in rows:
            name = row[Variable("lm")].value.rsplit("/", 1)[-1]
            # Arles and Avignon are the two cities within half a degree.
            assert name.startswith(("Arles_", "Avignon_"))

    def test_optional_event(self, engine):
        rows = engine.select(
            """
            PREFIX o: <http://landmarks.example.org/ontology/>
            PREFIX r: <http://landmarks.example.org/resource/>
            SELECT ?lm ?ev WHERE {
              ?lm o:locatedIn r:Rome .
              OPTIONAL { ?lm o:witnessed ?ev . }
            }
            """
        )
        assert len(rows) == 3  # every Roman landmark, event or not

    def test_three_hop_figure_chain(self, engine):
        # landmark -> event -> figure: the multi-hop structure kSP scores.
        rows = engine.select(
            """
            PREFIX o: <http://landmarks.example.org/ontology/>
            SELECT DISTINCT ?fig WHERE {
              ?lm o:witnessed ?ev .
              ?ev o:involves ?fig .
            }
            """
        )
        assert rows  # some landmark witnessed an event involving a figure
