"""All four algorithms on the paper's worked Examples 5, 6 and 8."""


import pytest

from repro.core.ranking import WeightedSumRanking
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, Q2

METHODS = ("bsp", "spp", "sp", "ta")


@pytest.mark.parametrize("method", METHODS)
class TestExample5:
    def test_q1_top1_is_montmajour(self, example_engine, method):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method=method)
        assert len(result) == 1
        place = result[0]
        assert place.root_label == "p1"
        assert place.looseness == 6.0
        assert place.distance == pytest.approx(0.2193, abs=1e-4)
        assert place.score == pytest.approx(6 * 0.2193, abs=1e-3)

    def test_q1_top2_ranking(self, example_engine, method):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=2, method=method)
        assert [p.root_label for p in result] == ["p1", "p2"]
        assert result[1].looseness == 4.0
        assert result[1].score == pytest.approx(4 * 1.2778, abs=1e-3)

    def test_q2_flips_the_ranking(self, example_engine, method):
        result = example_engine.query(Q2, EXAMPLE_KEYWORDS, k=2, method=method)
        assert [p.root_label for p in result] == ["p2", "p1"]
        assert result[0].score == pytest.approx(4 * 0.0806, abs=1e-3)
        assert result[1].score == pytest.approx(6 * 1.3525, abs=1e-3)

    def test_k_larger_than_qualified_places(self, example_engine, method):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=10, method=method)
        assert len(result) == 2  # only two places exist

    def test_result_tree_structure(self, example_engine, method):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method=method)
        place = result[0]
        graph = example_engine.graph
        labels = {graph.label(v) for v in place.tree_vertices()}
        # Example 2: the semantic place is {p1, v1, v2, v3, v4} minus v5
        # (v1 is on the path to v4).
        assert labels == {"p1", "v1", "v2", "v3", "v4"}
        assert place.graph_distance("history") == 2
        assert place.graph_distance("ancient") == 1

    def test_unqualified_keywords_give_empty_result(self, example_engine, method):
        result = example_engine.query(Q1, ["church", "architecture", "abbey"],
                                      k=2, method=method)
        # No single place reaches all three keywords.
        assert len(result) == 0

    def test_single_keyword(self, example_engine, method):
        result = example_engine.query(Q1, ["history"], k=2, method=method)
        assert len(result) == 2
        # p1 reaches history at distance 2 (L=3), p2 at distance 1 (L=2).
        by_label = {p.root_label: p for p in result}
        assert by_label["p1"].looseness == 3.0
        assert by_label["p2"].looseness == 2.0


@pytest.mark.parametrize("method", METHODS)
class TestWeightedSumRanking:
    def test_equation_1_scores(self, example_engine, method):
        ranking = WeightedSumRanking(beta=0.5)
        result = example_engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method=method, ranking=ranking
        )
        assert len(result) == 2
        for place in result:
            assert place.score == pytest.approx(
                0.5 * place.looseness + 0.5 * place.distance
            )
        scores = [p.score for p in result]
        assert scores == sorted(scores)

    def test_beta_near_one_ranks_by_looseness(self, example_engine, method):
        ranking = WeightedSumRanking(beta=0.999)
        result = example_engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method=method, ranking=ranking
        )
        # Looseness dominates: p2 (L=4) beats p1 (L=6) despite distance.
        assert [p.root_label for p in result] == ["p2", "p1"]


class TestStatsReporting:
    def test_spp_prunes_rule2_in_example_8(self, example_engine):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="spp")
        # p1 enters the result; p2's TQSP construction aborts via Rule 2.
        assert result.stats.pruned_rule2 == 1
        assert result.stats.tqsp_computations == 2

    def test_bsp_computes_both_tqsps(self, example_engine):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="bsp")
        assert result.stats.tqsp_computations == 2
        assert result.stats.places_retrieved == 2
        assert result.stats.rtree_node_accesses >= 1

    def test_rule1_prunes_unqualified(self, example_engine):
        result = example_engine.query(
            Q1, ["church", "architecture"], k=1, method="spp"
        )
        assert len(result) == 0
        assert result.stats.pruned_rule1 == 2  # both places unqualified
        assert result.stats.tqsp_computations == 0

    def test_runtime_recorded(self, example_engine):
        result = example_engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="sp")
        assert result.stats.runtime_seconds > 0
        assert result.stats.semantic_seconds >= 0
        assert result.stats.other_seconds >= 0
        assert result.stats.algorithm == "SP"
