"""UNION and OPTIONAL evaluation in the SPARQL engine."""

import pytest

from repro.sparql.ast import Variable
from repro.sparql.eval import QueryEngine
from repro.sparql.parser import SparqlSyntaxError, parse_query
from repro.sparql.store import TripleStore

DATA = """\
<http://x/paris> <http://x/country> <http://x/france> .
<http://x/lyon> <http://x/country> <http://x/france> .
<http://x/rome> <http://x/country> <http://x/italy> .
<http://x/paris> <http://x/population> "2100000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/rome> <http://x/population> "2800000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/paris> <http://x/nickname> "city of light" .
<http://x/paris> <http://x/landmark> <http://x/eiffel> .
<http://x/rome> <http://x/landmark> <http://x/colosseum> .
<http://x/eiffel> <http://x/built> "1889"^^<http://www.w3.org/2001/XMLSchema#integer> .
"""


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(TripleStore.from_ntriples(DATA))


def locals_of(rows, name="s"):
    return sorted(
        row[Variable(name)].value.rsplit("/", 1)[-1]
        for row in rows
        if Variable(name) in row
    )


class TestUnion:
    def test_two_alternatives(self, engine):
        rows = engine.select(
            """
            SELECT ?s WHERE {
              { ?s <http://x/country> <http://x/france> . }
              UNION
              { ?s <http://x/country> <http://x/italy> . }
            }
            """
        )
        assert locals_of(rows) == ["lyon", "paris", "rome"]

    def test_union_joins_with_base_pattern(self, engine):
        rows = engine.select(
            """
            SELECT ?s ?l WHERE {
              ?s <http://x/landmark> ?l .
              { ?s <http://x/country> <http://x/france> . }
              UNION
              { ?s <http://x/country> <http://x/italy> . }
            }
            """
        )
        # Only cities with landmarks survive the base pattern.
        assert locals_of(rows) == ["paris", "rome"]

    def test_three_way_union(self, engine):
        rows = engine.select(
            """
            SELECT ?s WHERE {
              { ?s <http://x/nickname> ?n . }
              UNION { ?s <http://x/country> <http://x/italy> . }
              UNION { ?s <http://x/landmark> <http://x/eiffel> . }
            }
            """
        )
        # paris matches twice (nickname + landmark) — duplicates kept
        # without DISTINCT, as in SPARQL.
        assert locals_of(rows) == ["paris", "paris", "rome"]

    def test_union_with_filters_inside(self, engine):
        rows = engine.select(
            """
            SELECT ?s WHERE {
              { ?s <http://x/population> ?p . FILTER(?p > 2500000) }
              UNION
              { ?s <http://x/nickname> ?n . }
            }
            """
        )
        assert locals_of(rows) == ["paris", "rome"]

    def test_no_alternative_matches(self, engine):
        rows = engine.select(
            """
            SELECT ?s WHERE {
              ?s <http://x/country> ?c .
              { ?s <http://x/mayor> ?m . } UNION { ?s <http://x/anthem> ?a . }
            }
            """
        )
        assert rows == []

    def test_plain_braced_group_merges(self, engine):
        rows = engine.select(
            "SELECT ?s WHERE { { ?s <http://x/country> <http://x/italy> . } }"
        )
        assert locals_of(rows) == ["rome"]


class TestOptional:
    def test_left_join_keeps_unmatched(self, engine):
        rows = engine.select(
            """
            SELECT ?s ?p WHERE {
              ?s <http://x/country> ?c .
              OPTIONAL { ?s <http://x/population> ?p . }
            }
            """
        )
        assert len(rows) == 3
        by_city = {
            row[Variable("s")].value.rsplit("/", 1)[-1]: row.get(Variable("p"))
            for row in rows
        }
        assert by_city["paris"].lexical == "2100000"
        assert by_city["rome"].lexical == "2800000"
        assert by_city["lyon"] is None  # unbound, kept by the left join

    def test_optional_filter_inside(self, engine):
        rows = engine.select(
            """
            SELECT ?s ?p WHERE {
              ?s <http://x/country> ?c .
              OPTIONAL { ?s <http://x/population> ?p . FILTER(?p > 2500000) }
            }
            """
        )
        by_city = {
            row[Variable("s")].value.rsplit("/", 1)[-1]: row.get(Variable("p"))
            for row in rows
        }
        assert by_city["rome"] is not None
        assert by_city["paris"] is None  # filtered out inside the OPTIONAL
        assert by_city["lyon"] is None

    def test_bound_detects_optional_misses(self, engine):
        rows = engine.select(
            """
            SELECT ?s WHERE {
              ?s <http://x/country> ?c .
              OPTIONAL { ?s <http://x/population> ?p . }
              FILTER(!BOUND(?p))
            }
            """
        )
        assert locals_of(rows) == ["lyon"]

    def test_filter_on_optional_variable(self, engine):
        rows = engine.select(
            """
            SELECT ?s WHERE {
              ?s <http://x/country> ?c .
              OPTIONAL { ?s <http://x/population> ?p . }
              FILTER(?p > 2500000)
            }
            """
        )
        # Unbound ?p is a filter error -> eliminated; only rome survives.
        assert locals_of(rows) == ["rome"]

    def test_union_then_optional(self, engine):
        rows = engine.select(
            """
            SELECT ?s ?b WHERE {
              { ?s <http://x/country> <http://x/france> . }
              UNION { ?s <http://x/country> <http://x/italy> . }
              OPTIONAL { ?s <http://x/landmark> ?l . ?l <http://x/built> ?b . }
            }
            """
        )
        by_city = {
            row[Variable("s")].value.rsplit("/", 1)[-1]: row.get(Variable("b"))
            for row in rows
        }
        assert by_city["paris"].lexical == "1889"
        assert by_city["lyon"] is None
        assert by_city["rome"] is None  # colosseum has no build year


class TestNestedRejected:
    def test_nested_union_inside_optional(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query(
                "SELECT * WHERE { OPTIONAL { { ?a ?b ?c . } UNION { ?d ?e ?f . } } }"
            )

    def test_nested_group_inside_union(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query(
                "SELECT * WHERE { { { ?a ?b ?c . } } UNION { ?d ?e ?f . } }"
            )
