"""TopKQueue: thresholds, eviction, deterministic ordering."""

import math

import pytest

from repro.core.query import SemanticPlace
from repro.core.topk import TopKQueue
from repro.spatial.geometry import Point


def make_place(root, score, looseness=2.0, distance=1.0):
    return SemanticPlace(
        root=root,
        root_label="p%d" % root,
        location=Point(0, 0),
        looseness=looseness,
        distance=distance,
        score=score,
        keyword_vertices={},
        paths={},
    )


class TestTopKQueue:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKQueue(0)

    def test_threshold_infinite_until_full(self):
        queue = TopKQueue(2)
        assert queue.threshold == math.inf
        queue.consider(make_place(1, 5.0))
        assert queue.threshold == math.inf
        queue.consider(make_place(2, 3.0))
        assert queue.threshold == 5.0

    def test_eviction_tightens_threshold(self):
        queue = TopKQueue(2)
        for root, score in ((1, 5.0), (2, 3.0), (3, 1.0)):
            queue.consider(make_place(root, score))
        assert queue.threshold == 3.0
        assert [p.root for p in queue.ranked()] == [3, 2]

    def test_worse_candidate_rejected(self):
        queue = TopKQueue(1)
        assert queue.consider(make_place(1, 1.0))
        assert not queue.consider(make_place(2, 2.0))
        assert [p.root for p in queue.ranked()] == [1]

    def test_equal_score_ties_keep_lower_root(self):
        queue = TopKQueue(1)
        queue.consider(make_place(5, 2.0))
        assert not queue.consider(make_place(9, 2.0))
        queue.consider(make_place(1, 2.0))
        assert [p.root for p in queue.ranked()] == [1]

    def test_ranked_ascending_score_then_root(self):
        queue = TopKQueue(4)
        for root, score in ((4, 2.0), (2, 1.0), (3, 2.0), (1, 3.0)):
            queue.consider(make_place(root, score))
        assert [p.root for p in queue.ranked()] == [2, 3, 4, 1]

    def test_len(self):
        queue = TopKQueue(3)
        queue.consider(make_place(1, 1.0))
        assert len(queue) == 1
