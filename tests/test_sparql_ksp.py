"""kSP-in-SPARQL: the ksp() clause, spatial builtins, the derived
triple view, the pushdown planner and the frozen SPARQL wire schema.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.rdf.documents import parse_point_literal
from repro.rdf.terms import IRI, Literal
from repro.sparql import (
    SparqlExecutor,
    SparqlOptions,
    SparqlPlanError,
    SparqlResult,
    SparqlSyntaxError,
    parse_query,
)
from repro.sparql.ast import PointExpr, TermExpr, Variable
from repro.sparql.plan import SparqlStats, term_to_json
from repro.sparql.view import (
    GEOMETRY_PREDICATE,
    KEYWORD_PREDICATE,
    LINK_PREDICATE,
    GraphTripleStore,
    backend_triple_view,
    geometry_literal,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

KW = " ".join(EXAMPLE_KEYWORDS)


def ksp_query(extra="", tail="ORDER BY ?score LIMIT 5", k=""):
    return (
        'SELECT ?place ?score WHERE { '
        'ksp(?place, ?score, "%s", POINT(%r %r)%s) . %s} %s'
        % (KW, Q1.x, Q1.y, k, extra, tail)
    )


@pytest.fixture(scope="module")
def engine():
    return KSPEngine(build_example_graph(), EngineConfig(alpha=3, tqsp_cache_size=0))


@pytest.fixture(scope="module")
def executor(engine):
    return SparqlExecutor(engine)


class TestKspClauseParsing:
    def test_full_clause(self):
        query = parse_query(
            'SELECT ?p ?s WHERE { ksp(?p, ?s, "roman abbey", POINT(4.66 43.71), 7) . }'
        )
        clause = query.ksp
        assert clause is not None
        assert clause.place == Variable("p")
        assert clause.score == Variable("s")
        assert clause.keywords == "roman abbey"
        assert (clause.x, clause.y) == (4.66, 43.71)
        assert clause.k == 7

    def test_score_variable_is_optional(self):
        query = parse_query(
            'SELECT ?p WHERE { ksp(?p, "roman", POINT(1 2), 3) . }'
        )
        assert query.ksp.score is None
        assert query.ksp.variables() == (Variable("p"),)

    def test_negative_coordinates(self):
        query = parse_query(
            'SELECT ?p WHERE { ksp(?p, "roman", POINT(-4.66 -43.71), 1) . }'
        )
        assert (query.ksp.x, query.ksp.y) == (-4.66, -43.71)

    def test_select_star_projects_clause_variables_first(self):
        query = parse_query(
            'SELECT * WHERE { ksp(?p, ?s, "roman", POINT(1 2), 1) . '
            "?p <urn:ksp:keyword> ?kw . }"
        )
        assert query.projected() == [Variable("p"), Variable("s"), Variable("kw")]

    def test_at_most_one_clause(self):
        with pytest.raises(SparqlSyntaxError, match="at most one ksp"):
            parse_query(
                'SELECT ?p WHERE { ksp(?p, "a", POINT(1 2), 1) . '
                'ksp(?p, "b", POINT(1 2), 1) . }'
            )

    def test_place_and_score_must_differ(self):
        with pytest.raises(SparqlSyntaxError, match="must differ"):
            parse_query('SELECT ?p WHERE { ksp(?p, ?p, "a", POINT(1 2), 1) . }')

    def test_keywords_must_be_nonempty(self):
        with pytest.raises(SparqlSyntaxError, match="keyword"):
            parse_query('SELECT ?p WHERE { ksp(?p, "", POINT(1 2), 1) . }')

    def test_k_must_be_positive(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query('SELECT ?p WHERE { ksp(?p, "a", POINT(1 2), 0) . }')

    def test_point_expression_in_filter(self):
        query = parse_query(
            "SELECT ?p WHERE { ?p <urn:ksp:keyword> ?kw . "
            "FILTER(DISTANCE(?p, POINT(1 2)) < 5) }"
        )
        call = query.filters[0].left
        assert call.arguments[1] == PointExpr(1.0, 2.0)

    def test_syntax_errors_report_line_and_column(self):
        try:
            parse_query('SELECT ?p WHERE {\n  ksp(?p ?s, "a", POINT(1 2)) . }')
        except SparqlSyntaxError as error:
            assert error.line == 2
            assert error.column == 10
            assert "line 2, column 10" in str(error)
        else:
            pytest.fail("expected a syntax error")

    def test_first_line_error_column(self):
        try:
            parse_query("SELECT ?p FROM { }")
        except SparqlSyntaxError as error:
            assert error.line == 1
            assert error.column == error.position + 1
        else:
            pytest.fail("expected a syntax error")


class TestDerivedTripleView:
    def test_keyword_triples_from_documents(self, engine):
        store, _ = backend_triple_view(engine)
        p1 = IRI("p1")
        terms = [
            triple.object.lexical
            for triple in store.match(subject=p1, predicate=KEYWORD_PREDICATE)
        ]
        assert terms == sorted(terms)
        assert "abbey" in terms

    def test_keyword_reverse_lookup_uses_posting(self, engine):
        store, _ = backend_triple_view(engine)
        subjects = [
            triple.subject.value
            for triple in store.match(
                predicate=KEYWORD_PREDICATE, object=Literal("abbey")
            )
        ]
        assert "p1" in subjects

    def test_geometry_triples_parse_back(self, engine):
        store, graph = backend_triple_view(engine)
        for vertex, point in graph.places():
            triples = list(
                store.match(
                    subject=IRI(graph.label(vertex)), predicate=GEOMETRY_PREDICATE
                )
            )
            assert len(triples) == 1
            parsed = parse_point_literal(triples[0].object.lexical)
            assert (parsed.x, parsed.y) == (point.x, point.y)

    def test_geometry_literal_exponent_floats_parse_back(self):
        from repro.spatial.geometry import Point

        literal = geometry_literal(Point(1e-7, 43.5))
        parsed = parse_point_literal(literal.lexical)
        assert (parsed.x, parsed.y) == (1e-7, 43.5)

    def test_link_triples_mirror_edges(self, engine):
        store, graph = backend_triple_view(engine)
        count = sum(1 for _ in store.match(predicate=LINK_PREDICATE))
        assert count == graph.edge_count

    def test_cardinality_estimates(self, engine):
        store, graph = backend_triple_view(engine)
        assert store.cardinality_estimate(predicate=LINK_PREDICATE) == (
            graph.edge_count
        )
        assert store.cardinality_estimate(predicate=GEOMETRY_PREDICATE) == (
            graph.place_count()
        )
        assert store.cardinality_estimate(predicate=IRI("urn:other")) == 0

    def test_union_place_graph_restores_all_places(self, engine, tmp_path):
        from repro.shard.build import build_shards
        from repro.shard.router import ShardRouter

        config = EngineConfig(alpha=3, tqsp_cache_size=0)
        build_shards(engine.graph, tmp_path, shards=2, config=config)
        router = ShardRouter(tmp_path, config)
        _, union = backend_triple_view(router)
        assert union.place_count() == engine.graph.place_count()
        assert sorted(v for v, _ in union.places()) == sorted(
            v for v, _ in engine.graph.places()
        )
        single = router.engines[0].graph
        assert single.place_count() < engine.graph.place_count()


class TestKspPlanner:
    def test_pushdown_stops_early(self, engine, executor):
        result = executor.execute(ksp_query(tail="ORDER BY ?score LIMIT 1"))
        assert result.stats.pushdown is True
        assert result.stats.places_examined == 1
        assert len(result.bindings) == 1

    def test_naive_path_examines_everything(self, engine, executor):
        result = executor.execute(
            ksp_query(tail="ORDER BY ?score LIMIT 1"),
            SparqlOptions(pushdown=False),
        )
        assert result.stats.pushdown is False
        assert result.stats.places_examined == engine.graph.place_count()

    def test_descending_order_disables_pushdown(self, executor):
        descending = executor.execute(
            ksp_query(k=", 5", tail="ORDER BY DESC(?score) LIMIT 2")
        )
        assert descending.stats.pushdown is False
        ascending = executor.execute(ksp_query(k=", 5", tail="ORDER BY ?score"))
        assert [row["place"] for row in descending.bindings] == [
            row["place"] for row in reversed(ascending.bindings)
        ]

    def test_offset_matches_naive(self, executor):
        pushed = executor.execute(ksp_query(tail="ORDER BY ?score LIMIT 1 OFFSET 1"))
        naive = executor.execute(
            ksp_query(tail="ORDER BY ?score LIMIT 1 OFFSET 1"),
            SparqlOptions(pushdown=False),
        )
        assert pushed.stats.pushdown is True
        assert pushed.bindings == naive.bindings

    def test_union_with_ksp_is_a_plan_error(self, executor):
        text = (
            'SELECT ?p WHERE { ksp(?p, "roman", POINT(1 2), 1) . '
            "{ ?p <urn:ksp:keyword> \"a\" . } UNION { ?p <urn:ksp:keyword> \"b\" . } }"
        )
        with pytest.raises(SparqlPlanError, match="UNION/OPTIONAL"):
            executor.execute(text)

    def test_k_cap_is_enforced(self, executor):
        with pytest.raises(SparqlPlanError, match="cap"):
            executor.execute(
                ksp_query(k=", 50", tail="ORDER BY ?score LIMIT 1"),
                SparqlOptions(k_cap=10),
            )

    def test_unbounded_clause_needs_a_limit(self, executor):
        with pytest.raises(SparqlPlanError, match="unbounded"):
            executor.execute(ksp_query(tail=""))

    def test_explicit_k_without_limit_is_fine(self, executor):
        result = executor.execute(ksp_query(k=", 2", tail=""))
        assert len(result.bindings) == 2

    def test_unsearchable_keywords_are_a_plan_error(self, executor):
        # The parser rejects empty keyword strings, but a hand-built AST
        # can still reach the planner's probe.
        from repro.sparql.ast import KSPClause, SelectQuery

        query = SelectQuery(
            variables=[Variable("p")],
            ksp=KSPClause(
                place=Variable("p"), score=None, keywords="", x=1.0, y=2.0, k=1
            ),
        )
        with pytest.raises(SparqlPlanError):
            executor.execute(query)

    def test_expired_deadline_returns_partial(self, executor):
        result = executor.execute(
            ksp_query(), SparqlOptions(timeout=1e-9)
        )
        assert result.stats.timed_out is True

    def test_plain_select_still_works(self, executor):
        result = executor.execute(
            'SELECT ?p WHERE { ?p <urn:ksp:keyword> "abbey" . }'
        )
        assert {row["p"]["value"] for row in result.bindings} == {"p1"}

    def test_residual_filter_rejections_are_counted(self, executor):
        result = executor.execute(
            ksp_query(
                extra='?place <urn:ksp:keyword> "abbey" . ',
                tail="ORDER BY ?score LIMIT 5",
            ),
            SparqlOptions(pushdown=False),
        )
        assert result.stats.places_rejected > 0
        assert {row["place"]["value"] for row in result.bindings} == {"p1"}


class TestSparqlWireSchema:
    def test_term_json_forms(self):
        assert term_to_json(IRI("urn:x")) == {"type": "uri", "value": "urn:x"}
        literal = Literal("1.5", datatype=IRI("urn:t"))
        assert term_to_json(literal) == {
            "type": "literal",
            "value": "1.5",
            "datatype": "urn:t",
        }
        tagged = Literal("hi", language="en")
        assert term_to_json(tagged)["xml:lang"] == "en"

    def test_round_trip(self, executor):
        result = executor.execute(ksp_query(), SparqlOptions(request_id="rt-1"))
        rebuilt = SparqlResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.request_id == "rt-1"

    def test_stats_round_trip_ignores_unknown_fields(self):
        stats = SparqlStats.from_dict({"rounds": 3, "later_addition": 1})
        assert stats.rounds == 3

    def test_matches_golden(self, executor):
        result = executor.execute(
            ksp_query(), SparqlOptions(request_id="sparql-golden-1")
        )
        document = result.to_dict()
        document["stats"]["runtime_seconds"] = 0.0
        golden = json.loads((GOLDEN_DIR / "sparql_example.json").read_text())
        assert document == golden

    def test_golden_file_is_canonical_json(self):
        raw = (GOLDEN_DIR / "sparql_example.json").read_text()
        parsed = json.loads(raw)
        assert raw == json.dumps(parsed, indent=2, sort_keys=True) + "\n"

    def test_order_condition_equality_backs_pushdown_test(self):
        # The eligibility check compares AST nodes by value.
        query = parse_query(ksp_query())
        assert query.order_by[0].expression == TermExpr(Variable("score"))


class TestOperatorSpans:
    """?trace=1 on a sparql query shows WHERE the plan spent time —
    operator-level spans (``op:*``) alongside the engine's own phases."""

    def _phases(self, executor, query_text, **options):
        result = executor.execute(
            query_text, SparqlOptions(trace=True, **options)
        )
        assert result.trace is not None
        return result.trace

    def test_cursor_pushdown_has_a_stream_span(self, executor):
        phases = self._phases(executor, ksp_query())
        assert "op:cursor-stream" in phases
        assert phases["op:cursor-stream"]["seconds"] >= 0.0

    def test_materialize_has_operator_spans(self, executor):
        phases = self._phases(executor, ksp_query(), pushdown=False)
        ops = [name for name in phases if name.startswith("op:")]
        assert any(name.startswith("op:materialize[k=") for name in ops)
        assert "op:join-sort-project" in ops
        # The engine's own phases ride in the same dict, after the ops.
        assert any(not name.startswith("op:") for name in phases)

    def test_rounds_pushdown_labels_each_round(self, engine):
        class NoCursor:
            """The engine minus its cursor: forces the k-doubling path
            (what a shard router looks like to the planner)."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name == "cursor":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        executor = SparqlExecutor(NoCursor(engine))
        phases = self._phases(executor, ksp_query())
        rounds = [n for n in phases if n.startswith("op:ksp-round-")]
        joins = [n for n in phases if n.startswith("op:join-round-")]
        assert rounds and joins
        assert len(rounds) == len(joins)
        assert rounds[0].startswith("op:ksp-round-1[k=")

    def test_untraced_queries_carry_no_spans(self, executor):
        result = executor.execute(ksp_query(), SparqlOptions())
        assert result.trace is None
