"""SPARQL subset parser."""

import pytest

from repro.rdf.terms import IRI, Literal
from repro.sparql.ast import (
    BooleanOp,
    Comparison,
    FunctionCall,
    NumberExpr,
    TriplePattern,
    Variable,
)
from repro.sparql.parser import RDF_TYPE, SparqlSyntaxError, parse_query


class TestBasics:
    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o . }")
        assert query.variables == []
        assert query.patterns == [
            TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        ]
        assert query.projected() == [Variable("s"), Variable("p"), Variable("o")]

    def test_select_variables(self):
        query = parse_query("SELECT ?a ?b WHERE { ?a <http://p> ?b . }")
        assert query.variables == [Variable("a"), Variable("b")]

    def test_final_dot_optional(self):
        query = parse_query("SELECT * WHERE { ?s <http://p> ?o }")
        assert len(query.patterns) == 1

    def test_multiple_patterns(self):
        query = parse_query(
            "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }"
        )
        assert len(query.patterns) == 2

    def test_prefixes(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/>\n"
            "SELECT * WHERE { ?s ex:knows ex:alice . }"
        )
        pattern = query.patterns[0]
        assert pattern.predicate == IRI("http://example.org/knows")
        assert pattern.object == IRI("http://example.org/alice")

    def test_undeclared_prefix(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?s nope:p ?o . }")

    def test_a_keyword_is_rdf_type(self):
        query = parse_query("SELECT * WHERE { ?s a <http://x/City> . }")
        assert query.patterns[0].predicate == RDF_TYPE

    def test_literals(self):
        query = parse_query(
            'SELECT * WHERE { ?s <http://p> "hello"@en . '
            '?s <http://q> "5"^^<http://www.w3.org/2001/XMLSchema#int> . '
            "?s <http://r> 42 . }"
        )
        assert query.patterns[0].object == Literal("hello", language="en")
        assert query.patterns[1].object.datatype.value.endswith("#int")
        assert query.patterns[2].object.lexical == "42"

    def test_string_escapes(self):
        query = parse_query(r'SELECT * WHERE { ?s <http://p> "a\"b\nc" . }')
        assert query.patterns[0].object.lexical == 'a"b\nc'

    def test_comments_skipped(self):
        query = parse_query(
            "# leading comment\nSELECT * WHERE { ?s ?p ?o . # inline\n }"
        )
        assert len(query.patterns) == 1


class TestFilters:
    def test_comparison(self):
        query = parse_query(
            "SELECT * WHERE { ?s <http://p> ?v . FILTER(?v < 5) }"
        )
        (filter_,) = query.filters
        assert isinstance(filter_, Comparison)
        assert filter_.op == "<"
        assert filter_.right == NumberExpr(5.0)

    def test_boolean_connectives_and_precedence(self):
        query = parse_query(
            "SELECT * WHERE { ?s <http://p> ?v . "
            "FILTER(?v > 1 && ?v < 9 || ?v = 0) }"
        )
        (filter_,) = query.filters
        assert isinstance(filter_, BooleanOp)
        assert filter_.op == "or"
        assert isinstance(filter_.operands[0], BooleanOp)
        assert filter_.operands[0].op == "and"

    def test_function_calls(self):
        query = parse_query(
            "SELECT * WHERE { ?s <http://p> ?v . "
            'FILTER(CONTAINS(STR(?v), "abc") && DISTANCE(?s, 1.5, 2.5) < 3) }'
        )
        (filter_,) = query.filters
        contains = filter_.operands[0]
        assert isinstance(contains, FunctionCall)
        assert contains.name == "CONTAINS"
        assert isinstance(contains.arguments[0], FunctionCall)

    def test_arithmetic(self):
        query = parse_query(
            "SELECT * WHERE { ?s <http://p> ?v . FILTER(?v * 2 + 1 > 7) }"
        )
        (filter_,) = query.filters
        assert isinstance(filter_, Comparison)

    def test_negation(self):
        query = parse_query(
            "SELECT * WHERE { ?s <http://p> ?v . FILTER(!BOUND(?v)) }"
        )
        assert query.filters


class TestModifiers:
    def test_distinct_limit_offset(self):
        query = parse_query(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } LIMIT 10 OFFSET 5"
        )
        assert query.distinct
        assert query.limit == 10
        assert query.offset == 5

    def test_order_by(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://p> ?v . } ORDER BY ?v DESC(?s) LIMIT 3"
        )
        assert len(query.order_by) == 2
        assert not query.order_by[0].descending
        assert query.order_by[1].descending

    def test_negative_limit_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?s ?p ?o . } LIMIT -3")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT WHERE { ?s ?p ?o . }",  # no variables
            "SELECT * { ?s ?p ?o . }",  # missing WHERE
            "SELECT * WHERE { ?s ?p . }",  # incomplete triple
            "SELECT * WHERE { ?s ?p ?o ",  # unterminated group
            "SELECT * WHERE { ?s ?p ?o . } trailing",
            "SELECT * WHERE { ?s ?p ?o . FILTER ?x }",  # missing parens
            "SELECT * WHERE { FILTER(NOSUCHFN(?x)) }",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(SparqlSyntaxError):
            parse_query(text)

    def test_error_position(self):
        with pytest.raises(SparqlSyntaxError) as excinfo:
            parse_query("SELECT * WHERE { ?s ?p ?o . } garbage")
        assert excinfo.value.position == 30
