"""All four algorithms driven by the disk-resident inverted index —
the paper's 'commercial search engine' setting where posting lists are
fetched from disk per query."""

import pytest

from repro.core.bsp import bsp_search
from repro.core.sp import sp_search
from repro.core.spp import spp_search
from repro.core.ta import ta_search
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.text.inverted import DiskInvertedIndex


@pytest.fixture(scope="module")
def disk_index(tiny_dbpedia_engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("disk") / "inverted.bin"
    tiny_dbpedia_engine.inverted_index.save(path, compress=True)
    with DiskInvertedIndex(path) as index:
        yield index


@pytest.fixture(scope="module")
def workload(tiny_dbpedia_engine):
    generator = QueryGenerator(
        tiny_dbpedia_engine.graph,
        tiny_dbpedia_engine.inverted_index,
        WorkloadConfig(keyword_count=3, k=3, seed=91),
    )
    return generator.workload(4, "O")


def signature(result):
    return [(p.root, round(p.score, 9)) for p in result]


class TestDiskIndexDrivesAlgorithms:
    def test_bsp(self, tiny_dbpedia_engine, disk_index, workload):
        engine = tiny_dbpedia_engine
        for query in workload:
            got = bsp_search(engine.graph, engine.rtree, disk_index, query)
            assert signature(got) == signature(engine.query(query, method="bsp"))

    def test_spp(self, tiny_dbpedia_engine, disk_index, workload):
        engine = tiny_dbpedia_engine
        for query in workload:
            got = spp_search(
                engine.graph, engine.rtree, disk_index, engine.reachability, query
            )
            assert signature(got) == signature(engine.query(query, method="spp"))

    def test_sp(self, tiny_dbpedia_engine, disk_index, workload):
        engine = tiny_dbpedia_engine
        for query in workload:
            got = sp_search(
                engine.graph, engine.rtree, disk_index, engine.reachability,
                engine.alpha_index, query,
            )
            assert signature(got) == signature(engine.query(query, method="sp"))

    def test_ta(self, tiny_dbpedia_engine, disk_index, workload):
        engine = tiny_dbpedia_engine
        for query in workload:
            got = ta_search(engine.graph, engine.rtree, disk_index, query)
            assert signature(got) == signature(engine.query(query, method="ta"))

    def test_reads_counted(self, disk_index):
        assert disk_index.reads > 0
