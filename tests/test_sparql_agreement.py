"""Agreement: ksp()-in-SPARQL answers match the native query API.

Three backends answer the same SPARQL text — the in-memory engine, an
engine rehydrated from a snapshot, and a 3-shard router — and every
binding row must be byte-identical across them and equal to what
``engine.query`` returns through the Python API, across k and alpha
sweeps.  A second suite checks the pushdown planner against the
materialize-then-sort oracle on randomized corpora, residual patterns
included.  A third drives ``POST /v1/sparql`` over a live socket.
"""

import json
import random

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.serve import KSPServer, ServeConfig
from repro.shard.build import build_shards
from repro.shard.router import ShardRouter
from repro.sparql import SparqlExecutor, SparqlOptions

from tests.test_batch_cache_agreement import TERMS, build_graph
from tests.test_serve import request

XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"

K_SWEEP = [1, 2, 4, 8]
ALPHAS = [2, 3]


def sparql_text(keywords, location, k=None, limit=None, extra=""):
    clause_k = ", %d" % k if k is not None else ""
    tail = "ORDER BY ?score LIMIT %d" % limit if limit is not None else ""
    return (
        'SELECT ?place ?score WHERE { '
        'ksp(?place, ?score, "%s", POINT(%r %r)%s) . %s} %s'
        % (" ".join(keywords), location.x, location.y, clause_k, extra, tail)
    )


def expected_rows(engine, keywords, location, k):
    """The SPARQL wire rows implied by the native Python API answer."""
    result = engine.query(location, keywords, k=k)
    return [
        {
            "place": {"type": "uri", "value": place.root_label},
            "score": {
                "type": "literal",
                "value": repr(place.score),
                "datatype": XSD_DOUBLE,
            },
        }
        for place in result
    ]


@pytest.fixture(scope="module", params=ALPHAS)
def backends(request, tmp_path_factory):
    """(engine, snapshot-engine, 3-shard router) built from one graph."""
    alpha = request.param
    config = EngineConfig(alpha=alpha, tqsp_cache_size=0)
    graph = build_graph(4200, vertex_count=70, place_share=0.5)
    engine = KSPEngine(graph, config)

    tmp = tmp_path_factory.mktemp("sparql-agreement-%d" % alpha)
    snapshot_path = tmp / "kb.snap"
    engine.save_snapshot(snapshot_path)
    snapshot_engine = KSPEngine.from_snapshot(snapshot_path)

    shard_dir = tmp / "shards"
    build_shards(graph, shard_dir, shards=3, config=config)
    router = ShardRouter(shard_dir, config)
    return engine, snapshot_engine, router


class TestThreeBackendAgreement:
    def test_k_sweep_byte_identical_and_matches_query_api(self, backends):
        engine, snapshot_engine, router = backends
        rng = random.Random(97)
        executors = [SparqlExecutor(backend) for backend in backends]
        for k in K_SWEEP:
            keywords = rng.sample(TERMS, 2)
            location = Q1
            text = sparql_text(keywords, location, k=k)
            expected = expected_rows(engine, keywords, location, k)
            payloads = [
                json.dumps(
                    executor.execute(text).to_dict()["bindings"], sort_keys=True
                )
                for executor in executors
            ]
            assert payloads[0] == payloads[1] == payloads[2]
            assert json.loads(payloads[0]) == expected

    def test_limit_pushdown_agrees_across_backends(self, backends):
        engine, _, _ = backends
        executors = [SparqlExecutor(backend) for backend in backends]
        text = sparql_text(TERMS[:2], Q1, limit=3)
        expected = expected_rows(engine, TERMS[:2], Q1, 3)
        results = [executor.execute(text) for executor in executors]
        for result in results:
            assert result.stats.pushdown is True
            assert result.bindings == expected
        assert results[0].stats.backend == "engine"
        assert results[2].stats.backend == "router"

    def test_composite_query_agrees_across_backends(self, backends):
        executors = [SparqlExecutor(backend) for backend in backends]
        extra = "?place <urn:ksp:keyword> ?kw . "
        text = sparql_text(TERMS[:3], Q1, k=8, extra=extra, limit=6)
        payloads = [
            json.dumps(executor.execute(text).to_dict()["bindings"], sort_keys=True)
            for executor in executors
        ]
        assert payloads[0] == payloads[1] == payloads[2]
        assert json.loads(payloads[0])


class TestPushdownEqualsNaive:
    @pytest.mark.parametrize("seed", [11, 23, 47, 89])
    def test_randomized_corpora(self, seed):
        rng = random.Random(seed)
        graph = build_graph(seed, vertex_count=60, place_share=0.45)
        engine = KSPEngine(graph, EngineConfig(alpha=2, tqsp_cache_size=0))
        executor = SparqlExecutor(engine)
        for _ in range(6):
            keywords = rng.sample(TERMS, rng.randint(1, 3))
            from repro.spatial.geometry import Point

            location = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
            limit = rng.randint(1, 6)
            extra = ""
            if rng.random() < 0.5:
                extra = '?place <urn:ksp:keyword> "%s" . ' % rng.choice(TERMS)
            text = sparql_text(keywords, location, limit=limit, extra=extra)
            pushed = executor.execute(text)
            naive = executor.execute(text, SparqlOptions(pushdown=False))
            assert pushed.stats.pushdown is True
            assert naive.stats.pushdown is False
            assert pushed.bindings == naive.bindings

    @pytest.mark.parametrize("seed", [7, 31])
    def test_randomized_router_pushdown(self, seed, tmp_path):
        graph = build_graph(seed, vertex_count=60, place_share=0.45)
        config = EngineConfig(alpha=2, tqsp_cache_size=0)
        build_shards(graph, tmp_path, shards=3, config=config)
        router = ShardRouter(tmp_path, config)
        executor = SparqlExecutor(router)
        rng = random.Random(seed * 13)
        for _ in range(4):
            keywords = rng.sample(TERMS, rng.randint(1, 2))
            from repro.spatial.geometry import Point

            location = Point(rng.uniform(-5, 5), rng.uniform(-5, 5))
            text = sparql_text(keywords, location, limit=rng.randint(1, 5))
            pushed = executor.execute(text)
            naive = executor.execute(text, SparqlOptions(pushdown=False))
            assert pushed.bindings == naive.bindings


# ----------------------------------------------------------------------
# The HTTP endpoint.


@pytest.fixture(scope="module")
def example_engine():
    return KSPEngine(build_example_graph(), EngineConfig(alpha=3, tqsp_cache_size=0))


@pytest.fixture(scope="module")
def server(example_engine):
    with KSPServer(example_engine, ServeConfig(workers=2, queue_depth=16)) as running:
        yield running


def post_sparql(port, body, headers=None):
    return request(port, "POST", "/v1/sparql", body=body, headers=headers)


class TestSparqlEndpoint:
    def test_agrees_with_v1_query(self, example_engine, server):
        text = sparql_text(EXAMPLE_KEYWORDS, Q1, limit=5)
        status, body, _ = post_sparql(server.port, {"query": text})
        assert status == 200
        expected = expected_rows(example_engine, EXAMPLE_KEYWORDS, Q1, 5)
        assert body["bindings"] == expected
        assert body["stats"]["pushdown"] is True
        assert body["request_id"]

        native_status, native_body, _ = request(
            server.port,
            "POST",
            "/v1/query",
            body={
                "location": [Q1.x, Q1.y],
                "keywords": list(EXAMPLE_KEYWORDS),
                "k": 5,
            },
        )
        assert native_status == 200
        native_scores = [repr(p["score"]) for p in native_body["places"]]
        sparql_scores = [row["score"]["value"] for row in body["bindings"]]
        assert sparql_scores == native_scores

    def test_syntax_error_reports_line_and_column(self, server):
        status, body, _ = post_sparql(
            server.port, {"query": 'SELECT ?p WHERE {\n  ksp(?p ?s, "a", POINT(1 2)) . }'}
        )
        assert status == 400
        assert body["line"] == 2
        assert body["column"] == 10
        assert body["position"] == 27
        assert "line 2, column 10" in body["error"]

    def test_plan_error_is_a_400(self, server):
        text = sparql_text(EXAMPLE_KEYWORDS, Q1)  # unbounded, no LIMIT
        status, body, _ = post_sparql(server.port, {"query": text})
        assert status == 400
        assert "unbounded" in body["error"]

    def test_request_id_is_echoed(self, server):
        text = sparql_text(EXAMPLE_KEYWORDS, Q1, limit=1)
        status, body, _ = post_sparql(
            server.port, {"query": text}, headers={"X-Request-Id": "sparql-rid-1"}
        )
        assert status == 200
        assert body["request_id"] == "sparql-rid-1"

    def test_missing_query_is_a_400(self, server):
        status, body, _ = post_sparql(server.port, {})
        assert status == 400
        assert "query" in body["error"]

    def test_pushdown_flag_is_honoured(self, server):
        text = sparql_text(EXAMPLE_KEYWORDS, Q1, limit=2)
        status, body, _ = post_sparql(
            server.port, {"query": text, "pushdown": False}
        )
        assert status == 200
        assert body["stats"]["pushdown"] is False
        pushed_status, pushed_body, _ = post_sparql(server.port, {"query": text})
        assert pushed_status == 200
        assert pushed_body["bindings"] == body["bindings"]
