"""R-tree structural invariants and query correctness."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect
from repro.spatial.rtree import RTree

coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
point_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=120)


def _make_items(pairs):
    return [(index, Point(x, y)) for index, (x, y) in enumerate(pairs)]


def _brute_force_nearest(items, query):
    return sorted(
        ((point.distance_to(query), key) for key, point in items),
        key=lambda pair: (pair[0], pair[1]),
    )


class TestConstruction:
    def test_max_entries_minimum(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert list(tree.nearest(Point(0, 0))) == []

    def test_insert_grows_and_validates(self):
        tree = RTree(max_entries=4)
        rng = random.Random(0)
        for index in range(200):
            tree.insert(index, Point(rng.uniform(0, 100), rng.uniform(0, 100)))
        assert len(tree) == 200
        tree.validate()
        assert tree.height >= 3

    def test_bulk_load_validates(self):
        rng = random.Random(1)
        items = [
            (index, Point(rng.uniform(0, 10), rng.uniform(0, 10)))
            for index in range(500)
        ]
        tree = RTree.bulk_load(items, max_entries=8)
        assert len(tree) == 500
        tree.validate()
        assert sorted(entry.key for entry in tree.iter_entries()) == list(range(500))

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        tree.validate()

    def test_bulk_load_single(self):
        tree = RTree.bulk_load([("only", Point(1, 2))])
        assert [entry.key for entry in tree.iter_entries()] == ["only"]

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_insert_invariants_hold(self, pairs):
        tree = RTree(max_entries=4)
        for key, point in _make_items(pairs):
            tree.insert(key, point)
        tree.validate()

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_invariants_hold(self, pairs):
        tree = RTree.bulk_load(_make_items(pairs), max_entries=4)
        tree.validate()


class TestNearest:
    @given(point_lists, st.tuples(coords, coords))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force_order(self, pairs, query_xy):
        items = _make_items(pairs)
        query = Point(*query_xy)
        tree = RTree.bulk_load(items, max_entries=4)
        expected = [distance for distance, _ in _brute_force_nearest(items, query)]
        got = [distance for distance, _ in tree.nearest(query)]
        assert len(got) == len(expected)
        for got_distance, expected_distance in zip(got, expected):
            assert got_distance == pytest.approx(expected_distance)

    def test_distances_nondecreasing_dynamic_tree(self):
        rng = random.Random(3)
        tree = RTree(max_entries=5)
        for index in range(300):
            tree.insert(index, Point(rng.uniform(0, 50), rng.uniform(0, 50)))
        previous = -1.0
        for distance, _ in tree.nearest(Point(25, 25)):
            assert distance >= previous
            previous = distance

    def test_node_access_counter(self):
        rng = random.Random(4)
        items = [
            (index, Point(rng.uniform(0, 50), rng.uniform(0, 50)))
            for index in range(400)
        ]
        tree = RTree.bulk_load(items, max_entries=8)
        cursor = tree.nearest(Point(0, 0))
        next(cursor)
        # Retrieving one point should only expand a root-to-leaf path, not
        # the whole tree.
        assert 1 <= cursor.node_accesses < tree.node_count()

    def test_peek_distance_lower_bounds_next(self):
        rng = random.Random(5)
        items = [
            (index, Point(rng.uniform(0, 50), rng.uniform(0, 50)))
            for index in range(100)
        ]
        tree = RTree.bulk_load(items, max_entries=4)
        cursor = tree.nearest(Point(10, 10))
        for _ in range(50):
            peek = cursor.peek_distance()
            distance, _ = next(cursor)
            assert peek <= distance + 1e-9

    def test_peek_none_when_exhausted(self):
        tree = RTree.bulk_load([(0, Point(0, 0))])
        cursor = tree.nearest(Point(1, 1))
        next(cursor)
        with pytest.raises(StopIteration):
            next(cursor)
        assert cursor.peek_distance() is None


class TestRangeSearch:
    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_linear_scan(self, pairs):
        items = _make_items(pairs)
        tree = RTree.bulk_load(items, max_entries=4)
        window = Rect(-20, -20, 30, 30)
        expected = {key for key, point in items if window.contains_point(point)}
        got = {entry.key for entry in tree.range_search(window)}
        assert got == expected

    def test_empty_window(self):
        tree = RTree.bulk_load([(0, Point(0, 0)), (1, Point(10, 10))])
        assert tree.range_search(Rect(50, 50, 60, 60)) == []


class TestAccounting:
    def test_levels_cover_all_nodes(self):
        rng = random.Random(6)
        tree = RTree.bulk_load(
            [(i, Point(rng.random(), rng.random())) for i in range(300)],
            max_entries=8,
        )
        level_nodes = sum(len(level) for level in tree.levels())
        assert level_nodes == tree.node_count()
        assert len(tree.levels()) == tree.height

    def test_size_bytes_positive_and_grows(self):
        small = RTree.bulk_load([(i, Point(i, i)) for i in range(10)])
        large = RTree.bulk_load([(i, Point(i, i)) for i in range(1000)])
        assert 0 < small.size_bytes() < large.size_bytes()

    def test_node_ids_unique(self):
        rng = random.Random(7)
        tree = RTree(max_entries=4)
        for index in range(200):
            tree.insert(index, Point(rng.random(), rng.random()))
        ids = [node.node_id for node in tree.iter_nodes()]
        assert len(ids) == len(set(ids))
