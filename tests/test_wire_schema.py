"""The wire schema: ``KSPResult.to_dict`` / ``from_dict`` round trips
and a golden-file pin of the exact JSON shape.

The schema is the single serialization surface — the HTTP server, the
CLI's ``--json`` / ``--stats`` output and cursor pagination all emit
it — so its shape is pinned byte-for-byte against a checked-in golden
file (timing fields zeroed: they are the only nondeterministic part).
"""

import json
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.core.query import KSPResult, SemanticPlace
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph

GOLDEN_DIR = Path(__file__).parent / "golden"

TIMING_FIELDS = ("runtime_seconds", "semantic_seconds", "other_seconds")


def golden_engine():
    # Cache off for deterministic counters; the paper's worked example
    # makes the golden file human-checkable.
    return KSPEngine(
        build_example_graph(), EngineConfig(alpha=3, tqsp_cache_size=0)
    )


def normalize(document):
    """Zero the wall-clock fields — everything else is deterministic."""
    for field in TIMING_FIELDS:
        if field in document.get("stats", {}):
            document["stats"][field] = 0.0
    return document


class TestGoldenFiles:
    def test_query_result_matches_golden(self):
        engine = golden_engine()
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method="sp", request_id="golden-1"
        )
        document = normalize(result.to_dict())
        golden = json.loads((GOLDEN_DIR / "query_example.json").read_text())
        assert document == golden

    def test_golden_file_is_canonical_json(self):
        raw = (GOLDEN_DIR / "query_example.json").read_text()
        parsed = json.loads(raw)
        assert raw == json.dumps(parsed, indent=2, sort_keys=True) + "\n"

    def test_timed_out_result_schema(self):
        engine = golden_engine()
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method="bsp", timeout=1e-9
        )
        document = result.to_dict()
        assert document["timed_out"] is True
        assert document["stats"]["timed_out"] is True
        assert document["places"] == []


class TestRoundTrips:
    def test_result_round_trip_preserves_everything(self):
        engine = golden_engine()
        result = engine.query(
            Q1, EXAMPLE_KEYWORDS, k=2, method="sp", trace=True, request_id="rt-1"
        )
        rebuilt = KSPResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.request_id == "rt-1"
        assert rebuilt.scores() == result.scores()
        assert [p.root for p in rebuilt] == [p.root for p in result]
        assert rebuilt.stats.tqsp_computations == result.stats.tqsp_computations
        assert rebuilt.trace is not None

    def test_place_round_trip(self):
        engine = golden_engine()
        place = engine.query(Q1, EXAMPLE_KEYWORDS, k=1, method="sp")[0]
        rebuilt = SemanticPlace.from_dict(place.to_dict())
        assert rebuilt.to_dict() == place.to_dict()
        assert rebuilt.root == place.root
        assert rebuilt.paths == place.paths

    def test_json_float_exactness(self):
        # repr round-trips floats exactly, so serialized scores compare
        # byte-identical across process boundaries.
        engine = golden_engine()
        result = engine.query(Q1, EXAMPLE_KEYWORDS, k=2, method="sp")
        through_json = json.loads(json.dumps(result.to_dict()))
        assert through_json["scores"] == result.to_dict()["scores"]

    def test_cursor_page_shares_the_schema(self):
        engine = golden_engine()
        page = engine.cursor(Q1, EXAMPLE_KEYWORDS).page(1)
        document = page.to_dict()
        assert set(document) == {
            "query",
            "request_id",
            "trace_id",
            "places",
            "scores",
            "looseness",
            "timed_out",
            "stats",
            "trace",
        }
        assert len(document["places"]) == 1

    def test_from_dict_ignores_unknown_stats_fields(self):
        engine = golden_engine()
        document = engine.query(Q1, EXAMPLE_KEYWORDS, k=1).to_dict()
        document["stats"]["added_in_a_future_version"] = 42
        rebuilt = KSPResult.from_dict(document)
        assert rebuilt.stats.algorithm == document["stats"]["algorithm"]
