"""The public API surface: imports, __all__, and one end-to-end flow
through only top-level names."""



class TestTopLevelExports:
    def test_all_names_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_importable(self):
        import repro.alpha
        import repro.bench
        import repro.core
        import repro.datagen
        import repro.rdf
        import repro.reach
        import repro.sparql
        import repro.spatial
        import repro.storage
        import repro.text

        for module in (
            repro.core,
            repro.rdf,
            repro.text,
            repro.spatial,
            repro.reach,
            repro.alpha,
            repro.datagen,
            repro.sparql,
            repro.storage,
            repro.bench,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestTopLevelFlow:
    def test_end_to_end_with_public_names_only(self):
        from repro import (
            EngineConfig,
            GraphBuilder,
            KSPEngine,
            Point,
            RDFGraph,
            keyword_search,
        )
        from repro.rdf import IRI, Literal, Triple

        builder = GraphBuilder()
        builder.add_triple(
            Triple(
                IRI("http://x/Cafe"),
                IRI("http://x/hasGeometry"),
                Literal("POINT(1 2)"),
            )
        )
        builder.add_triple(
            Triple(
                IRI("http://x/Cafe"), IRI("http://x/serves"), IRI("http://x/Espresso")
            )
        )
        graph = builder.build()
        assert isinstance(graph, RDFGraph)

        engine = KSPEngine(graph, EngineConfig(alpha=1))
        result = engine.query(Point(1, 2), ["espresso"], k=1)
        assert len(result) == 1
        assert "Cafe" in result[0].root_label

        trees = keyword_search(graph, engine.inverted_index, ["espresso"], k=2)
        # The Espresso vertex itself is the tightest root (looseness 0);
        # the cafe follows one hop behind.
        assert trees[0].looseness == 0.0
        assert "Espresso" in trees[0].root_label
        assert trees[1].looseness == 1.0
        assert "Cafe" in trees[1].root_label
