"""The pre-forked multi-process server: N workers on one inherited
listen socket, each mmap'ing the same snapshot.

Pins the fleet contract: answers through a worker pool are byte-identical
to the single-process golden pin, ``/v1/debug/engine`` reports the whole
fleet, a SIGKILL'd worker is respawned while the service keeps answering,
and ``stop()`` reaps every child.
"""

import json
import os
import signal
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KSPEngine
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, Q1, build_example_graph
from repro.serve import PreForkServer, ServeConfig

GOLDEN_DIR = Path(__file__).parent / "golden"

TIMING_FIELDS = ("runtime_seconds", "semantic_seconds", "other_seconds")


def _normalize(document):
    for field in TIMING_FIELDS:
        if field in document.get("stats", {}):
            document["stats"][field] = 0.0
    return document


def request(port, method, path, body=None, headers=None, timeout=30.0):
    connection = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        raw = json.dumps(body).encode("utf-8") if body is not None else None
        base = {"Content-Type": "application/json"} if raw else {}
        base.update(headers or {})
        connection.request(method, path, body=raw, headers=base)
        response = connection.getresponse()
        payload = response.read().decode("utf-8")
        if response.headers.get("Content-Type", "").startswith(
            "application/json"
        ):
            payload = json.loads(payload)
        return response.status, payload
    finally:
        connection.close()


GOLDEN_BODY = {
    "location": [Q1.x, Q1.y],
    "keywords": list(EXAMPLE_KEYWORDS),
    "k": 2,
    "method": "sp",
}
# The golden file pins request_id "golden-1"; it rides the header.
GOLDEN_HEADERS = {"X-Request-Id": "golden-1"}


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("multiproc") / "example.snap"
    engine = KSPEngine(
        build_example_graph(), EngineConfig(alpha=3, tqsp_cache_size=0)
    )
    engine.save_snapshot(path)
    return path


@pytest.fixture(scope="module")
def fleet(snapshot_path):
    server = PreForkServer(
        engine_loader=lambda: KSPEngine.from_snapshot(
            snapshot_path, EngineConfig(alpha=3, tqsp_cache_size=0)
        ),
        config=ServeConfig(workers=2, queue_depth=8),
        workers=2,
        heartbeat_seconds=0.2,
    )
    server.start()
    yield server
    server.stop()


def _wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFleetServing:
    def test_workers_answer_queries(self, fleet):
        assert len(fleet.worker_pids()) == 2
        for _ in range(8):
            status, payload = request(
                fleet.port, "POST", "/v1/query", GOLDEN_BODY
            )
            assert status == 200
            assert payload["places"]

    def test_golden_pin_byte_identical_through_workers(self, fleet):
        golden = json.loads((GOLDEN_DIR / "query_example.json").read_text())
        # Hit both workers: repeat enough that the kernel's accept
        # balancing lands the query on each at least once with high odds.
        for _ in range(8):
            status, payload = request(
                fleet.port, "POST", "/v1/query", GOLDEN_BODY, GOLDEN_HEADERS
            )
            assert status == 200
            assert _normalize(payload) == golden

    def test_debug_engine_reports_fleet(self, fleet):
        def both_ready():
            status, payload = request(fleet.port, "GET", "/v1/debug/engine")
            if status != 200:
                return False
            workers = payload.get("workers", [])
            return len(workers) == 2 and all(w["healthy"] for w in workers)

        assert _wait_for(both_ready), "fleet never reported 2 healthy workers"
        status, payload = request(fleet.port, "GET", "/v1/debug/engine")
        assert status == 200
        assert payload["worker"]["pid"] in fleet.worker_pids()
        assert payload["worker"]["index"] in (0, 1)
        pids = {entry["pid"] for entry in payload["workers"]}
        assert pids == set(fleet.worker_pids())

    def test_killed_worker_is_respawned_and_service_survives(self, fleet):
        before = fleet.worker_pids()
        victim = before[0]
        os.kill(victim, signal.SIGKILL)

        def respawned():
            pids = fleet.worker_pids()
            return len(pids) == 2 and victim not in pids

        assert _wait_for(respawned), "supervisor never replaced the worker"
        # The service answers throughout and after the respawn.
        for _ in range(4):
            status, payload = request(
                fleet.port, "POST", "/v1/query", GOLDEN_BODY
            )
            assert status == 200
            assert payload["places"]
        assert fleet.respawns >= 1


class TestLifecycle:
    def test_stop_reaps_all_workers(self, snapshot_path):
        server = PreForkServer(
            engine_loader=lambda: KSPEngine.from_snapshot(snapshot_path),
            config=ServeConfig(workers=2, queue_depth=8),
            workers=2,
            heartbeat_seconds=0.2,
        )
        server.start()
        pids = server.worker_pids()
        assert len(pids) == 2
        status, _ = request(server.port, "POST", "/v1/query", GOLDEN_BODY)
        assert status == 200
        server.stop()
        for pid in pids:
            # Every child is gone (ESRCH) — not a zombie held by us.
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_prefork_requires_engine_or_loader(self):
        with pytest.raises(ValueError):
            PreForkServer(config=ServeConfig(), workers=2)

    def test_single_worker_fleet_is_valid(self, snapshot_path):
        with PreForkServer(
            engine_loader=lambda: KSPEngine.from_snapshot(snapshot_path),
            config=ServeConfig(workers=2, queue_depth=8),
            workers=1,
        ) as server:
            status, payload = request(
                server.port, "POST", "/v1/query", GOLDEN_BODY
            )
            assert status == 200
            assert payload["places"]


class TestHeartbeatStaleness:
    """Staleness is judged by CLOCK_MONOTONIC, never by wall clock.

    A backward NTP step used to mark a healthy fleet stale (wall-clock
    ``written_at`` drifted into the future relative to the reader) and a
    forward step could hide a genuinely wedged worker.  The writer now
    publishes ``monotonic_at`` alongside the human-readable wall stamp
    and the reader trusts only the monotonic field."""

    @staticmethod
    def _write(tmp_path, index, record):
        from repro.serve.multiproc import write_worker_status

        write_worker_status(tmp_path, index, record)

    @staticmethod
    def _read(tmp_path):
        from repro.serve.multiproc import read_worker_statuses

        return read_worker_statuses(tmp_path)

    def test_fresh_monotonic_beats_skewed_wall_clock(self, tmp_path):
        # Wall clock jumped an hour forward since the heartbeat was
        # written; the monotonic stamp says it is fresh.  Healthy.
        self._write(
            tmp_path,
            0,
            {
                "ready": True,
                "heartbeat_seconds": 0.2,
                "written_at": time.time() - 3600.0,
                "monotonic_at": time.monotonic(),
            },
        )
        (record,) = self._read(tmp_path)
        assert record["healthy"] is True
        assert record["age_seconds"] < 0.5

    def test_stale_monotonic_beats_fresh_wall_clock(self, tmp_path):
        # The worker wedged long ago; a forward wall-clock step (or a
        # writer stamping wall time right before hanging) must not hide
        # it.  The monotonic stamp is authoritative: unhealthy.
        self._write(
            tmp_path,
            0,
            {
                "ready": True,
                "heartbeat_seconds": 0.2,
                "written_at": time.time(),
                "monotonic_at": time.monotonic() - 3600.0,
            },
        )
        (record,) = self._read(tmp_path)
        assert record["healthy"] is False
        assert record["age_seconds"] >= 3600.0

    def test_legacy_record_falls_back_to_wall_clock(self, tmp_path):
        # Records written before the monotonic field existed still get
        # a (best-effort) wall-clock staleness judgement.
        self._write(
            tmp_path,
            0,
            {
                "ready": True,
                "heartbeat_seconds": 0.2,
                "written_at": time.time(),
            },
        )
        (record,) = self._read(tmp_path)
        assert record["healthy"] is True

        self._write(
            tmp_path,
            1,
            {
                "ready": True,
                "heartbeat_seconds": 0.2,
                "written_at": time.time() - 3600.0,
            },
        )
        records = self._read(tmp_path)
        assert records[1]["healthy"] is False

    def test_record_without_any_timestamp_is_unhealthy(self, tmp_path):
        self._write(tmp_path, 0, {"ready": True, "heartbeat_seconds": 0.2})
        (record,) = self._read(tmp_path)
        assert record["healthy"] is False
        assert record["age_seconds"] is None

    def test_live_fleet_publishes_monotonic_heartbeats(self, fleet):
        status, payload = request(fleet.port, "GET", "/v1/debug/engine")
        assert status == 200
        workers = payload["workers"]
        assert workers
        for worker in workers:
            assert isinstance(worker.get("monotonic_at"), float)
            assert isinstance(worker.get("written_at"), float)
            assert worker["healthy"] is True


# ---------------------------------------------------------------------------
# Fleet metrics aggregation (the observability-plane acceptance bar)


def _counter_value(text, name, labels=""):
    """The value of one sample line in a Prometheus exposition."""
    prefix = name + labels + " "
    for line in text.splitlines():
        if line.startswith(prefix):
            return float(line[len(prefix):])
    return None


QUERY_OK = '{code="200",endpoint="/v1/query"}'


class TestFleetMetricsAggregation:
    def _spool_sum(self, fleet):
        from repro.obs.fleet import read_metrics_spools

        total = 0.0
        spools = read_metrics_spools(fleet.status_dir)
        for record in spools:
            for entry in record["state"]["series"]:
                if entry["name"] != "ksp_http_requests_total":
                    continue
                labels = dict(entry["labels"])
                if (
                    labels.get("endpoint") == "/v1/query"
                    and labels.get("code") == "200"
                ):
                    total += float(entry["data"]["value"])
        return total, spools

    def test_merged_scrape_equals_spool_sums_and_is_coherent(self, fleet):
        for _ in range(6):
            status, _ = request(fleet.port, "POST", "/v1/query", GOLDEN_BODY)
            assert status == 200

        # Quiesce: wait for every worker's heartbeat to flush its spool
        # (the sum stops changing once all served queries are spooled).
        def stable_sum():
            first, _ = self._spool_sum(fleet)
            time.sleep(0.5)
            second, spools = self._spool_sum(fleet)
            return (first, spools) if first == second and first >= 6 else None

        settled = None
        deadline = time.monotonic() + 10.0
        while settled is None and time.monotonic() < deadline:
            settled = stable_sum()
        assert settled is not None, "worker spools never quiesced"
        spool_total, spools = settled
        assert len(spools) == 2, "expected one live spool per worker"

        # The merged scrape equals the sum of the per-worker spools —
        # whichever worker answers.
        status, text1 = request(fleet.port, "GET", "/v1/metrics")
        assert status == 200
        merged1 = _counter_value(text1, "ksp_http_requests_total", QUERY_OK)
        assert merged1 == spool_total

        # Coherence: a second consecutive scrape can only see the sum
        # grow (spools only grow), never dip below the first answer.
        status, text2 = request(fleet.port, "GET", "/v1/metrics")
        assert status == 200
        merged2 = _counter_value(text2, "ksp_http_requests_total", QUERY_OK)
        assert merged2 is not None and merged2 >= merged1

    def test_gauges_stay_attributable_per_worker(self, fleet):
        status, text = request(fleet.port, "GET", "/v1/metrics")
        assert status == 200
        worker_labels = set()
        for line in text.splitlines():
            if line.startswith("ksp_process_uptime_seconds{"):
                labels = line[line.index("{") + 1 : line.index("}")]
                for part in labels.split(","):
                    key, _, value = part.partition("=")
                    if key == "worker":
                        worker_labels.add(value.strip('"'))
        assert len(worker_labels) == 2, text
        pids = {str(pid) for pid in fleet.worker_pids()}
        assert worker_labels <= pids

    def test_debug_metrics_returns_the_merged_state(self, fleet):
        status, payload = request(fleet.port, "GET", "/v1/debug/metrics")
        assert status == 200
        assert payload["pid"] in fleet.worker_pids()
        assert payload["worker"] in (0, 1)
        names = {entry["name"] for entry in payload["state"]["series"]}
        assert "ksp_http_requests_total" in names

    def test_queries_record_worker_pid(self, fleet):
        status, _ = request(
            fleet.port,
            "POST",
            "/v1/query",
            GOLDEN_BODY,
            {"X-Request-Id": "fleet-pid-1"},
        )
        assert status == 200

        def find_record():
            status, payload = request(fleet.port, "GET", "/v1/debug/queries")
            if status != 200:
                return None
            for entry in payload["queries"]:
                if entry.get("request_id") == "fleet-pid-1":
                    return entry
            return None

        # /v1/debug/queries answers from whichever worker accepts, and
        # flight recorders are per-process: retry until the recording
        # worker answers.
        entry = None
        deadline = time.monotonic() + 10.0
        while entry is None and time.monotonic() < deadline:
            entry = find_record()
        assert entry is not None, "recording worker never answered"
        assert entry["pid"] in fleet.worker_pids()
        assert entry["worker_id"] in (0, 1)

    def test_profile_endpoint_answers_from_a_worker(self, fleet):
        status, payload = request(
            fleet.port, "GET", "/v1/debug/profile?seconds=0.3&hz=50"
        )
        assert status == 200
        assert payload["pid"] in fleet.worker_pids()
        assert payload["worker"] in (0, 1)
        assert payload["samples"] >= 0
        assert payload["engine"] in ("signal", "thread")
