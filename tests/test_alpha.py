"""alpha-radius word neighborhoods and the Lemma 2-5 bounds."""


import pytest

from repro.alpha.index import AlphaIndex
from repro.alpha.neighborhood import (
    looseness_alpha_bound,
    merge_neighborhoods,
    place_word_neighborhood,
)
from repro.core.semantic_place import SearchStatus, SemanticPlaceSearcher
from repro.datagen.paper_example import EXAMPLE_KEYWORDS, build_example_graph
from repro.spatial.rtree import RTree
from repro.text.inverted import InvertedIndex, build_query_map


@pytest.fixture(scope="module")
def example():
    graph = build_example_graph()
    rtree = RTree.bulk_load(graph.places(), max_entries=4)
    return graph, rtree


class TestPlaceNeighborhood:
    def test_matches_table_3_row_p1(self, example):
        graph, _ = example
        p1 = graph.vertex_by_label("p1")
        neighborhood = place_word_neighborhood(graph, p1, alpha=1)
        # Table 3 (alpha = 1): abbey at 0; ancient/catholic/roman at 1;
        # history unreachable within radius 1.
        assert neighborhood["abbey"] == 0
        assert neighborhood["ancient"] == 1
        assert neighborhood["catholic"] == 1
        assert neighborhood["roman"] == 1
        assert "history" not in neighborhood

    def test_matches_table_3_row_p2(self, example):
        graph, _ = example
        p2 = graph.vertex_by_label("p2")
        neighborhood = place_word_neighborhood(graph, p2, alpha=1)
        assert neighborhood["catholic"] == 0
        assert neighborhood["roman"] == 0
        assert neighborhood["history"] == 1
        assert "ancient" not in neighborhood  # at distance 2 via v8
        assert "abbey" not in neighborhood

    def test_larger_alpha_supersets(self, example):
        graph, _ = example
        p2 = graph.vertex_by_label("p2")
        small = place_word_neighborhood(graph, p2, alpha=1)
        large = place_word_neighborhood(graph, p2, alpha=3)
        assert set(small) <= set(large)
        for term, distance in small.items():
            assert large[term] == distance
        assert large["ancient"] == 2

    def test_alpha_zero_is_own_document(self, example):
        graph, _ = example
        p1 = graph.vertex_by_label("p1")
        assert place_word_neighborhood(graph, p1, alpha=0) == {
            "abbey": 0,
            "montmajour": 0,
        }

    def test_negative_alpha_rejected(self, example):
        graph, _ = example
        with pytest.raises(ValueError):
            place_word_neighborhood(graph, 0, alpha=-1)


class TestMerge:
    def test_min_distance_union(self):
        target = {"a": 2, "b": 1}
        merge_neighborhoods(target, {"a": 1, "c": 3})
        assert target == {"a": 1, "b": 1, "c": 3}


class TestLoosenessBound:
    def test_missing_terms_pay_alpha_plus_one(self):
        bound = looseness_alpha_bound({"x": 1}, ["x", "y"], alpha=3)
        assert bound == 1 + 1 + 4

    def test_node_bound_matches_example_10(self, example):
        # Example 10: node N over p1 and p2, alpha = 1, keywords
        # {ancient, roman, catholic, history}: L_aB(T_N) = 1+0+0+1+1 = 3.
        graph, _ = example
        p1 = graph.vertex_by_label("p1")
        p2 = graph.vertex_by_label("p2")
        merged = place_word_neighborhood(graph, p1, alpha=1)
        merge_neighborhoods(merged, place_word_neighborhood(graph, p2, alpha=1))
        bound = looseness_alpha_bound(merged, EXAMPLE_KEYWORDS, alpha=1)
        assert bound == 3.0


class TestAlphaIndex:
    def test_place_postings(self, example):
        graph, rtree = example
        index = AlphaIndex(graph, rtree, alpha=1)
        p1 = graph.vertex_by_label("p1")
        p2 = graph.vertex_by_label("p2")
        assert index.place_neighborhood_distance(p1, "ancient") == 1
        assert index.place_neighborhood_distance(p2, "ancient") is None
        assert index.place_neighborhood_distance(p2, "history") == 1

    def test_root_node_aggregates_all_places(self, example):
        graph, rtree = example
        index = AlphaIndex(graph, rtree, alpha=1)
        root_id = rtree.root.node_id
        # Root covers both places: min distances across them (Table 3).
        assert index.node_neighborhood_distance(root_id, "abbey") == 0
        assert index.node_neighborhood_distance(root_id, "ancient") == 1
        assert index.node_neighborhood_distance(root_id, "catholic") == 0
        assert index.node_neighborhood_distance(root_id, "roman") == 0
        assert index.node_neighborhood_distance(root_id, "history") == 1

    def test_query_view_bounds(self, example):
        graph, rtree = example
        index = AlphaIndex(graph, rtree, alpha=1)
        view = index.query_view(EXAMPLE_KEYWORDS)
        p1 = graph.vertex_by_label("p1")
        # p1 at alpha=1: ancient 1, roman 1, catholic 1, history missing (2).
        assert view.place_looseness_bound(p1) == 1 + 1 + 1 + 1 + 2
        assert view.node_looseness_bound(rtree.root.node_id) == 3.0

    def test_bound_never_exceeds_true_looseness(self, tiny_yago_graph):
        """Lemma 2 as a property on a synthetic corpus."""
        graph = tiny_yago_graph
        rtree = RTree.bulk_load(graph.places(), max_entries=8)
        index = AlphaIndex(graph, rtree, alpha=2)
        inverted = InvertedIndex.build(graph)
        searcher = SemanticPlaceSearcher(graph)
        keywords = ["kw00000", "kw00001", "kw00003"]
        view = index.query_view(keywords)
        query_map = build_query_map(inverted, keywords)
        checked = 0
        for place, _ in graph.places():
            search = searcher.tightest(keywords, place, query_map)
            if search.status is not SearchStatus.COMPLETE:
                continue
            assert view.place_looseness_bound(place) <= search.looseness + 1e-9
            checked += 1
            if checked >= 40:
                break
        assert checked > 0

    def test_node_bound_lower_bounds_place_bounds(self, tiny_dbpedia_graph):
        """Lemma 4: a node's bound never exceeds any enclosed place's."""
        graph = tiny_dbpedia_graph
        rtree = RTree.bulk_load(graph.places(), max_entries=8)
        index = AlphaIndex(graph, rtree, alpha=2)
        keywords = ["kw00000", "kw00002", "kw00005"]
        view = index.query_view(keywords)
        for node in rtree.iter_nodes():
            if not node.is_leaf:
                continue
            node_bound = view.node_looseness_bound(node.node_id)
            for entry in node.entries:
                assert node_bound <= view.place_looseness_bound(entry.key) + 1e-9

    def test_size_grows_with_alpha(self, example):
        graph, rtree = example
        sizes = [
            AlphaIndex(graph, rtree, alpha=alpha).size_bytes() for alpha in (0, 1, 3)
        ]
        assert sizes[0] < sizes[1] <= sizes[2]

    def test_invalid_alpha(self, example):
        graph, rtree = example
        with pytest.raises(ValueError):
            AlphaIndex(graph, rtree, alpha=-2)
