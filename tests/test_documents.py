"""GraphBuilder: the [43]-style simplification from triples to data graph."""


from repro.rdf import ntriples
from repro.rdf.documents import GraphBuilder, graph_from_triples, parse_point_literal
from repro.rdf.terms import IRI, BlankNode, Literal, Triple
from repro.spatial.geometry import Point
from repro.datagen.paper_example import (
    EXAMPLE_NTRIPLES,
    P1_LOCATION,
    P2_LOCATION,
    build_example_graph,
)


def _t(subject, predicate, obj):
    return Triple(IRI(subject), IRI(predicate), obj)


class TestPointLiteral:
    def test_wkt_point(self):
        assert parse_point_literal("POINT(4.66 43.71)") == Point(4.66, 43.71)

    def test_bare_pair(self):
        assert parse_point_literal("43.71 4.66") == Point(43.71, 4.66)

    def test_comma_pair(self):
        assert parse_point_literal("43.71, 4.66") == Point(43.71, 4.66)

    def test_negative(self):
        assert parse_point_literal("-1.5 -2.25") == Point(-1.5, -2.25)

    def test_not_a_point(self):
        assert parse_point_literal("somewhere nice") is None


class TestSimplification:
    def test_entity_edge_created(self):
        graph = graph_from_triples(
            [_t("http://x/A_Thing", "http://x/knows", IRI("http://x/B_Thing"))]
        )
        a = graph.vertex_by_label("http://x/A_Thing")
        b = graph.vertex_by_label("http://x/B_Thing")
        assert list(graph.out_neighbors(a)) == [b]

    def test_uri_keywords_in_document(self):
        graph = graph_from_triples(
            [_t("http://x/Saint_Peter", "http://x/p", IRI("http://x/Rome"))]
        )
        subject = graph.vertex_by_label("http://x/Saint_Peter")
        assert {"saint", "peter"} <= graph.document(subject)

    def test_predicate_description_joins_object_document(self):
        graph = graph_from_triples(
            [_t("http://x/A", "http://x/birthPlace", IRI("http://x/Rome"))]
        )
        target = graph.vertex_by_label("http://x/Rome")
        assert "birthplace" in graph.document(target)
        source = graph.vertex_by_label("http://x/A")
        assert "birthplace" not in graph.document(source)

    def test_literal_folded_into_subject_without_edge(self):
        graph = graph_from_triples(
            [_t("http://x/A", "http://x/comment", Literal("ancient history"))]
        )
        assert graph.vertex_count == 1
        subject = graph.vertex_by_label("http://x/A")
        assert {"ancient", "history"} <= graph.document(subject)
        # Predicate tokens of literal triples are NOT added (Figure 1(b)).
        assert "comment" not in graph.document(subject)

    def test_structural_edges_dropped(self):
        graph = graph_from_triples(
            [
                _t("http://x/A", "http://x/sameAs", IRI("http://x/B")),
                _t("http://x/A", "http://x/linksTo", IRI("http://x/C")),
                _t("http://x/A", "http://x/redirectTo", IRI("http://x/D")),
            ]
        )
        # Neither edges nor the object vertices are materialized.
        assert graph.vertex_count == 0

    def test_geometry_literal_sets_location(self):
        graph = graph_from_triples(
            [_t("http://x/P", "http://x/hasGeometry", Literal("POINT(1.0 2.0)"))]
        )
        place = graph.vertex_by_label("http://x/P")
        assert graph.location(place) == Point(1.0, 2.0)

    def test_lat_long_pair_sets_location(self):
        graph = graph_from_triples(
            [
                _t("http://x/P", "http://www.w3.org/2003/01/geo/wgs84_pos#lat", Literal("43.71")),
                _t("http://x/P", "http://www.w3.org/2003/01/geo/wgs84_pos#long", Literal("4.66")),
            ]
        )
        place = graph.vertex_by_label("http://x/P")
        assert graph.location(place) == Point(43.71, 4.66)

    def test_lat_alone_is_not_a_place(self):
        graph = graph_from_triples(
            [_t("http://x/P", "http://x/lat", Literal("43.71"))]
        )
        assert not graph.is_place(graph.vertex_by_label("http://x/P"))

    def test_unparsable_geometry_treated_as_literal(self):
        graph = graph_from_triples(
            [_t("http://x/P", "http://x/hasGeometry", Literal("the nice spot"))]
        )
        place = graph.vertex_by_label("http://x/P")
        assert not graph.is_place(place)
        assert "nice" in graph.document(place)

    def test_blank_nodes_supported(self):
        graph = graph_from_triples(
            [Triple(BlankNode("b0"), IRI("http://x/p"), IRI("http://x/A"))]
        )
        assert graph.has_vertex_label("_:b0")

    def test_duplicate_triples_idempotent(self):
        triple = _t("http://x/A", "http://x/p", IRI("http://x/B"))
        graph = graph_from_triples([triple, triple])
        assert graph.edge_count == 1


class TestPaperExamplePipeline:
    """Building Figure 1 from N-Triples must reproduce the documents,
    edges and locations of the hand-built fixture."""

    def test_documents_match_figure_1b(self):
        graph = graph_from_triples(ntriples.parse(EXAMPLE_NTRIPLES))
        expected = {
            "Montmajour_Abbey": {"abbey", "montmajour"},
            "Romanesque_architecture": {"architecture", "romanesque", "subject"},
            "Saint_Peter": {"catholic", "dedication", "peter", "roman", "saint"},
            "Ancient_Diocese_of_Arles": {"ancient", "arles", "diocese"},
            "Architectural_history": {"architectural", "history", "subject"},
            "Roman_Empire": {"ancient", "birthplace", "empire", "roman"},
            "Mary_Magdalene": {"mary", "magdalene", "patron"},
            "Catholic_Church": {"catholic", "church", "denomination", "history"},
            "Anatolia": {"anatolia", "ancient", "deathplace", "history"},
        }
        for local_name, document in expected.items():
            vertex = graph.vertex_by_label("http://ex.org/" + local_name)
            assert graph.document(vertex) == frozenset(document), local_name
        diocese = graph.vertex_by_label("http://ex.org/Roman_Catholic_Diocese")
        # Paper shows {catholic, diocese, roman} (documents are truncated in
        # the figure); URI tokens are exactly these three.
        assert graph.document(diocese) == frozenset({"catholic", "diocese", "roman"})

    def test_locations_match_figure_2(self):
        graph = graph_from_triples(ntriples.parse(EXAMPLE_NTRIPLES))
        p1 = graph.vertex_by_label("http://ex.org/Montmajour_Abbey")
        p2 = graph.vertex_by_label("http://ex.org/Roman_Catholic_Diocese")
        assert graph.location(p1) == P1_LOCATION
        assert graph.location(p2) == P2_LOCATION
        assert graph.place_count() == 2

    def test_edge_structure_matches_figure_1a(self):
        graph = graph_from_triples(ntriples.parse(EXAMPLE_NTRIPLES))
        fixture = build_example_graph()
        assert graph.vertex_count == fixture.vertex_count
        assert graph.edge_count == fixture.edge_count
