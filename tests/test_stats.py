"""QueryStats / AggregateStats accounting."""

import pytest

from repro.core.stats import AggregateStats, QueryStats


class TestQueryStats:
    def test_other_seconds(self):
        stats = QueryStats(runtime_seconds=1.0, semantic_seconds=0.4)
        assert stats.other_seconds == pytest.approx(0.6)

    def test_other_seconds_clamped(self):
        stats = QueryStats(runtime_seconds=0.1, semantic_seconds=0.4)
        assert stats.other_seconds == 0.0

    def test_as_dict_round_trips_fields(self):
        stats = QueryStats(algorithm="SP", tqsp_computations=3, pruned_rule1=2)
        data = stats.as_dict()
        assert data["algorithm"] == "SP"
        assert data["tqsp_computations"] == 3
        assert data["pruned_rule1"] == 2
        assert data["timed_out"] is False


class TestAggregateStats:
    def test_means(self):
        aggregate = AggregateStats()
        aggregate.add(QueryStats(runtime_seconds=0.1, semantic_seconds=0.06,
                                 tqsp_computations=4, rtree_node_accesses=2))
        aggregate.add(QueryStats(runtime_seconds=0.3, semantic_seconds=0.10,
                                 tqsp_computations=6, rtree_node_accesses=4))
        assert aggregate.mean_runtime_ms == pytest.approx(200.0)
        assert aggregate.mean_semantic_ms == pytest.approx(80.0)
        assert aggregate.mean_other_ms == pytest.approx(120.0)
        assert aggregate.mean_tqsp_computations == 5.0
        assert aggregate.mean_rtree_node_accesses == 3.0
        assert len(aggregate) == 2

    def test_empty(self):
        aggregate = AggregateStats()
        assert aggregate.mean_runtime_ms == 0.0
        assert aggregate.timeout_count == 0

    def test_timeout_count(self):
        aggregate = AggregateStats()
        aggregate.add(QueryStats(timed_out=True))
        aggregate.add(QueryStats())
        assert aggregate.timeout_count == 1

    def test_percentiles(self):
        aggregate = AggregateStats()
        for seconds in (0.01, 0.02, 0.03, 0.04, 0.10):
            aggregate.add(QueryStats(runtime_seconds=seconds))
        assert aggregate.runtime_percentile_ms(0) == pytest.approx(10.0)
        assert aggregate.runtime_percentile_ms(50) == pytest.approx(30.0)
        assert aggregate.runtime_percentile_ms(100) == pytest.approx(100.0)
        assert aggregate.runtime_percentile_ms(75) == pytest.approx(40.0)

    def test_percentile_edge_cases(self):
        aggregate = AggregateStats()
        assert aggregate.runtime_percentile_ms(50) == 0.0
        aggregate.add(QueryStats(runtime_seconds=0.5))
        assert aggregate.runtime_percentile_ms(99) == pytest.approx(500.0)
        with pytest.raises(ValueError):
            aggregate.runtime_percentile_ms(101)
