"""Cross-algorithm agreement: BSP, SPP, SP and TA must all return the
exhaustive reference answer on synthetic corpora — roots and scores alike.

This is the strongest correctness check in the suite: the four algorithms
share no pruning logic with the exhaustive scan, so agreement on hundreds
of (query, k) combinations would be hard to achieve by coincidence."""

import pytest

from repro.core.exhaustive import exhaustive_search
from repro.core.ranking import MultiplicativeRanking, WeightedSumRanking
from repro.datagen.queries import QueryGenerator, WorkloadConfig
from repro.core.config import EngineConfig

METHODS = ("bsp", "spp", "sp", "ta")


def signature(result):
    return [(p.root, round(p.score, 9), p.looseness) for p in result]


def assert_agreement(engine, query, ranking=MultiplicativeRanking()):
    reference = exhaustive_search(
        engine.graph, engine.inverted_index, query, ranking=ranking
    )
    expected = signature(reference)
    for method in METHODS:
        got = signature(engine.query(query, method=method, ranking=ranking))
        assert got == expected, "%s disagrees for %r" % (method, query)


@pytest.mark.parametrize("engine_name", ["tiny_dbpedia_engine", "tiny_yago_engine"])
class TestAgreementOnWorkloads:
    def test_original_queries(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=3, k=4, seed=11),
        )
        for query in generator.workload(8, "O"):
            assert_agreement(engine, query)

    def test_single_keyword_queries(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=1, k=3, seed=23),
        )
        for query in generator.workload(6, "O"):
            assert_agreement(engine, query)

    def test_sdll_queries(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=2, k=3, seed=37, min_hops=2,
                           max_term_frequency=30),
        )
        for query in generator.workload(4, "SDLL"):
            assert_agreement(engine, query)

    def test_k_one(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=3, k=1, seed=5),
        )
        for query in generator.workload(5, "O"):
            assert_agreement(engine, query)

    def test_large_k(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=2, k=20, seed=17),
        )
        for query in generator.workload(4, "O"):
            assert_agreement(engine, query)

    def test_weighted_sum_ranking(self, engine_name, request):
        engine = request.getfixturevalue(engine_name)
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=3, k=4, seed=29),
        )
        ranking = WeightedSumRanking(beta=0.3)
        for query in generator.workload(5, "O"):
            assert_agreement(engine, query, ranking=ranking)


class TestUndirectedAgreement:
    def test_undirected_engines_agree(self, tiny_yago_graph):
        from repro.core.engine import KSPEngine

        engine = KSPEngine(tiny_yago_graph, EngineConfig(alpha=2, undirected=True))
        generator = QueryGenerator(
            engine.graph,
            engine.inverted_index,
            WorkloadConfig(keyword_count=3, k=3, seed=3),
        )
        for query in generator.workload(4, "O"):
            reference = exhaustive_search(
                engine.graph, engine.inverted_index, query, undirected=True
            )
            expected = signature(reference)
            for method in METHODS:
                got = signature(engine.query(query, method=method))
                assert got == expected, method
