"""Unit and property tests for the geometry primitives."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect

coords = st.floats(
    min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


def rects():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: Rect(
            min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3])
        )
    )


class TestPoint:
    def test_distance_to_matches_paper_example(self):
        # Example 5: S(q1, p1) = 0.22 (rounded).
        q1 = Point(43.51, 4.75)
        p1 = Point(43.71, 4.66)
        assert q1.distance_to(p1) == pytest.approx(0.2193, abs=1e-4)

    def test_distance_is_symmetric(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.distance_to(b) == b.distance_to(a) == 5.0

    def test_squared_distance_consistent(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.squared_distance_to(b) == 25.0

    def test_as_tuple(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)

    @given(points, points)
    def test_distance_nonnegative_and_zero_iff_equal(self, a, b):
        distance = a.distance_to(b)
        assert distance >= 0
        if a == b:
            assert distance == 0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_from_point_is_degenerate(self):
        rect = Rect.from_point(Point(2, 3))
        assert rect.area() == 0
        assert rect.contains_point(Point(2, 3))

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.union_all([])

    def test_union_covers_both(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 3, 3)
        union = a.union(b)
        assert union.contains_rect(a) and union.contains_rect(b)
        assert union == Rect(0, 0, 3, 3)

    def test_enlargement(self):
        a = Rect(0, 0, 1, 1)
        assert a.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)
        assert a.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == 0.0

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert not a.intersects(Rect(3, 3, 4, 4))
        # Touching edges count as intersecting.
        assert a.intersects(Rect(2, 0, 3, 1))

    def test_min_distance_inside_is_zero(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.min_distance(Point(5, 5)) == 0.0

    def test_min_distance_outside(self):
        rect = Rect(0, 0, 1, 1)
        assert rect.min_distance(Point(4, 5)) == 5.0

    def test_margin(self):
        assert Rect(0, 0, 2, 3).margin() == 5.0

    @given(rects(), points)
    def test_min_distance_lower_bounds_max_distance(self, rect, point):
        assert rect.min_distance(point) <= rect.max_distance(point) + 1e-9

    @given(rects(), points)
    def test_min_distance_lower_bounds_center_distance(self, rect, point):
        assert rect.min_distance(point) <= point.distance_to(rect.center()) + 1e-9

    @given(rects(), rects(), points)
    def test_union_min_distance_is_smaller(self, a, b, point):
        # MINDIST to a union never exceeds MINDIST to either part — the
        # property that makes best-first traversal admissible.
        union = a.union(b)
        assert union.min_distance(point) <= a.min_distance(point) + 1e-9
        assert union.min_distance(point) <= b.min_distance(point) + 1e-9
